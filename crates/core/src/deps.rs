//! Rule-level **dependency analysis**: which schema nodes each guard's
//! atoms resolve to, and — inverted — which access rules an update along a
//! given schema edge can *enable or disable*.
//!
//! Every guard `A(right, e)` is evaluated at the parent node of the edge
//! `e` (Sec. 3.4). Rewriting it into step normal form (Lemma 4.4) makes
//! each atom speak about the evaluation node, one child, or the parent —
//! so each atom resolves *statically* to a schema node: `l` and `l[ψ]`
//! resolve through [`Schema::child_by_label`], `..[ψ]` re-anchors the
//! residual at the (unique) schema parent, and atoms that resolve to no
//! schema node are constants. The resulting map
//!
//! ```text
//!   rule (right, e)  ↦  { (schema node, polarity) … }
//! ```
//!
//! is the *guard dependency relation*; its inverse is the **rule
//! enablement graph**: adding or deleting an instance node mapped to
//! schema node `s` can only change the truth of guards that depend on
//! `s`. The static screener (`idar-solver`'s `screen` module) uses this
//! graph as its fixpoint worklist — when a label joins the may-set, only
//! the rules depending on it are re-examined — and dead-rule detection
//! reports rules whose dependencies are unreachable.

use crate::formula::StepFormula;
use crate::guarded::{AccessRules, Right};
use crate::schema::{Schema, SchemaNodeId};
use std::collections::BTreeSet;

/// Identifies one access rule: a right and the schema edge it governs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId {
    /// The access right (`add` or `del`).
    pub right: Right,
    /// The schema node whose incoming edge the rule guards.
    pub edge: SchemaNodeId,
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.right, self.edge)
    }
}

/// The schema nodes a single guard depends on, split by the polarity of
/// the occurrence (under an even or odd number of negations).
///
/// A guard can only change truth value when a node mapped to one of these
/// schema nodes is added or deleted; `pos`/`neg` additionally record the
/// direction: adding a `pos` node can turn the guard true, adding a `neg`
/// node can turn it false (and dually for deletions). Occurrences under
/// both polarities appear in both sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuardDeps {
    /// Nodes occurring positively (an addition can enable the guard).
    pub pos: BTreeSet<SchemaNodeId>,
    /// Nodes occurring negatively (an addition can disable the guard).
    pub neg: BTreeSet<SchemaNodeId>,
}

impl GuardDeps {
    /// The dependencies of `guard` (already in step normal form) when
    /// evaluated at schema node `at`.
    pub fn of_step(schema: &Schema, at: SchemaNodeId, guard: &StepFormula) -> GuardDeps {
        let mut deps = GuardDeps::default();
        collect(schema, at, guard, false, &mut deps);
        deps
    }

    /// All dependencies, regardless of polarity.
    pub fn all(&self) -> BTreeSet<SchemaNodeId> {
        self.pos.union(&self.neg).copied().collect()
    }

    /// Does the guard depend on `node` (under either polarity)?
    pub fn depends_on(&self, node: SchemaNodeId) -> bool {
        self.pos.contains(&node) || self.neg.contains(&node)
    }
}

fn collect(schema: &Schema, at: SchemaNodeId, f: &StepFormula, neg: bool, out: &mut GuardDeps) {
    match f {
        StepFormula::True | StepFormula::False | StepFormula::Parent => {}
        StepFormula::Child(l) => {
            if let Some(c) = schema.child_by_label(at, l) {
                record(out, c, neg);
            }
        }
        StepFormula::ChildSat(l, inner) => {
            if let Some(c) = schema.child_by_label(at, l) {
                record(out, c, neg);
                // Atoms inside the residual are evaluated at the child;
                // `l[ψ]` is monotone in `ψ`, so polarity passes through.
                collect(schema, c, inner, neg, out);
            }
        }
        StepFormula::ParentSat(inner) => {
            // The schema parent is unique; `..` itself is structural (its
            // truth never changes under updates), only the residual's
            // atoms — re-anchored at the parent — are dependencies.
            if let Some(p) = schema.parent(at) {
                collect(schema, p, inner, neg, out);
            }
        }
        StepFormula::Not(g) => collect(schema, at, g, !neg, out),
        StepFormula::And(a, b) | StepFormula::Or(a, b) => {
            collect(schema, at, a, neg, out);
            collect(schema, at, b, neg, out);
        }
    }
}

fn record(out: &mut GuardDeps, node: SchemaNodeId, neg: bool) {
    if neg {
        out.neg.insert(node);
    } else {
        out.pos.insert(node);
    }
}

/// The rule enablement graph of an access-rule table: for every rule, its
/// guard's dependency set; inverted, for every schema node, the rules
/// whose guards depend on it.
#[derive(Debug, Clone)]
pub struct EnablementGraph {
    /// `deps[i]` are the dependencies of rule `rules[i]`.
    rules: Vec<RuleId>,
    deps: Vec<GuardDeps>,
    /// `affected[s.index()]` lists indices into `rules` of the rules
    /// depending on schema node `s`.
    affected: Vec<Vec<usize>>,
}

impl EnablementGraph {
    /// Build the graph for `rules` over `schema`. Guards are normalised
    /// (Lemma 4.4) and walked once each — linear in total guard size.
    pub fn build(schema: &Schema, rules: &AccessRules) -> EnablementGraph {
        let mut ids = Vec::with_capacity(schema.node_count().saturating_sub(1) * 2);
        let mut deps = Vec::with_capacity(ids.capacity());
        let mut affected = vec![Vec::new(); schema.node_count()];
        for edge in schema.edge_ids() {
            let at = schema.parent(edge).expect("edges have parents");
            for right in [Right::Add, Right::Del] {
                let guard = StepFormula::from_formula(rules.get(right, edge));
                let d = GuardDeps::of_step(schema, at, &guard);
                let idx = ids.len();
                for s in d.all() {
                    affected[s.index()].push(idx);
                }
                ids.push(RuleId { right, edge });
                deps.push(d);
            }
        }
        EnablementGraph {
            rules: ids,
            deps,
            affected,
        }
    }

    /// All rules, paired with their guard dependencies.
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, &GuardDeps)> + '_ {
        self.rules.iter().copied().zip(self.deps.iter())
    }

    /// The dependencies of one rule.
    pub fn deps_of(&self, rule: RuleId) -> Option<&GuardDeps> {
        self.rules
            .iter()
            .position(|&r| r == rule)
            .map(|i| &self.deps[i])
    }

    /// The rules whose guards depend on schema node `node` — the rules an
    /// update touching `node` can enable or disable.
    pub fn rules_affected_by(&self, node: SchemaNodeId) -> impl Iterator<Item = RuleId> + '_ {
        self.affected[node.index()].iter().map(|&i| self.rules[i])
    }

    /// Number of rules (two per schema edge).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Formula;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::parse("a(x, y), b, c").unwrap())
    }

    #[test]
    fn bare_labels_resolve_to_children() {
        let s = schema();
        let at = SchemaNodeId::ROOT;
        let g = StepFormula::from_formula(&Formula::parse("a & !b").unwrap());
        let d = GuardDeps::of_step(&s, at, &g);
        let a = s.resolve("a").unwrap();
        let b = s.resolve("b").unwrap();
        assert!(d.pos.contains(&a));
        assert!(d.neg.contains(&b));
        assert!(!d.depends_on(s.resolve("c").unwrap()));
    }

    #[test]
    fn unresolvable_labels_are_constants() {
        let s = schema();
        let g = StepFormula::from_formula(&Formula::parse("zz").unwrap());
        let d = GuardDeps::of_step(&s, SchemaNodeId::ROOT, &g);
        assert!(d.pos.is_empty() && d.neg.is_empty());
    }

    #[test]
    fn filters_descend_and_parent_reanchors() {
        let s = schema();
        let a = s.resolve("a").unwrap();
        let x = s.resolve("a/x").unwrap();
        let b = s.resolve("b").unwrap();
        // Evaluated at the root: a[x] depends on both a and a/x.
        let g = StepFormula::from_formula(&Formula::parse("a[x]").unwrap());
        let d = GuardDeps::of_step(&s, SchemaNodeId::ROOT, &g);
        assert!(d.pos.contains(&a) && d.pos.contains(&x));
        // Evaluated at `a`: ..[b] re-anchors the residual at the root.
        let g = StepFormula::from_formula(&Formula::parse("..[!b]").unwrap());
        let d = GuardDeps::of_step(&s, a, &g);
        assert!(d.neg.contains(&b) && d.pos.is_empty());
    }

    #[test]
    fn double_negation_restores_polarity() {
        let s = schema();
        let g = StepFormula::from_formula(&Formula::parse("!!a").unwrap());
        let d = GuardDeps::of_step(&s, SchemaNodeId::ROOT, &g);
        assert!(d.pos.contains(&s.resolve("a").unwrap()));
        assert!(d.neg.is_empty());
    }

    #[test]
    fn enablement_graph_inverts_dependencies() {
        let s = schema();
        let mut rules = AccessRules::new(&s);
        let a = s.resolve("a").unwrap();
        let b = s.resolve("b").unwrap();
        let c = s.resolve("c").unwrap();
        rules.set(Right::Add, a, Formula::True);
        rules.set(Right::Add, b, Formula::parse("a").unwrap());
        rules.set(Right::Add, c, Formula::parse("a & !b").unwrap());
        let g = EnablementGraph::build(&s, &rules);
        assert_eq!(g.rule_count(), 2 * (s.node_count() - 1));
        let on_a: Vec<_> = g.rules_affected_by(a).collect();
        assert!(on_a.contains(&RuleId {
            right: Right::Add,
            edge: b
        }));
        assert!(on_a.contains(&RuleId {
            right: Right::Add,
            edge: c
        }));
        let on_c: Vec<_> = g.rules_affected_by(c).collect();
        assert!(on_c.is_empty());
        let d = g
            .deps_of(RuleId {
                right: Right::Add,
                edge: c,
            })
            .unwrap();
        assert!(d.pos.contains(&a) && d.neg.contains(&b));
    }
}
