//! The paper's running example: the **leave application** form.
//!
//! * [`schema`] — Figure 1 (labels abbreviated to first letters, as in the
//!   paper: `application → a`, `name → n`, …; note `d` is both `dept` under
//!   `a` and `decision` under the root, and `r` is both `reject` and
//!   `reason`).
//! * [`figure2a`] / [`figure2b`] — the two instances of Figure 2.
//! * [`example_3_12`] — the full guarded form of Example 3.12 (24 access
//!   rules, initial instance `{r}`, completion formula `f`).
//! * [`section_3_5_variant`] — the modified form of Sec. 3.5 that is
//!   completable but **not** semi-sound.
//! * [`complete_run`] — a witness complete run for Example 3.12.

use crate::formula::Formula;
use crate::guarded::{AccessRules, GuardedForm, Right, Update};
use crate::instance::{InstNodeId, Instance};
use crate::schema::Schema;
use std::sync::Arc;

/// The Figure 1 schema: `a(n, d, p(b, e)), s, d(a, r(r)), f`.
pub fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::parse("a(n, d, p(b, e)), s, d(a, r(r)), f").expect("leave schema is well-formed"),
    )
}

/// Figure 2(a): a submitted application for two periods.
pub fn figure2a(schema: Arc<Schema>) -> Instance {
    Instance::parse(schema, "a(n, d, p(b, e), p(b, e)), s").expect("figure 2a parses")
}

/// Figure 2(b): an application for a single period that was rejected.
pub fn figure2b(schema: Arc<Schema>) -> Instance {
    Instance::parse(schema, "a(n, d, p(b, e)), s, d(r), f").expect("figure 2b parses")
}

fn f(text: &str) -> Formula {
    Formula::parse(text).expect("example formulas parse")
}

/// The guarded form of Example 3.12: empty initial instance, completion
/// formula `f`, and the access rules exactly as listed in the paper.
pub fn example_3_12() -> GuardedForm {
    let schema = schema();
    let mut rules = AccessRules::new(&schema);
    let edge = |p: &str| schema.resolve(p).expect("rule edge exists");

    rules.set_both(edge("a"), f("!a"), f("!a"));
    rules.set_both(edge("a/n"), f("!../s & !n"), f("!../s"));
    rules.set_both(edge("a/d"), f("!../s & !d"), f("!../s"));
    rules.set_both(edge("a/p"), f("!../s"), f("!../s"));
    rules.set_both(edge("a/p/b"), f("!../../s & !b"), f("!../../s"));
    rules.set_both(edge("a/p/e"), f("!../../s & !e"), f("!../../s"));
    rules.set_both(edge("s"), f("!s & a[n & d & p] & !a/p[!b | !e]"), f("!s"));
    rules.set_both(edge("d"), f("s & !d"), f("!f"));
    rules.set_both(edge("d/a"), f("!(a | r)"), f("!../f"));
    rules.set_both(edge("d/r"), f("!(a | r)"), f("!../f"));
    rules.set_both(edge("d/r/r"), f("!r"), f("!../../f"));
    rules.set_both(edge("f"), f("d[a | r] & !f"), f("!f"));

    let initial = Instance::empty(schema.clone());
    GuardedForm::new(schema, rules, initial, f("f"))
}

/// The Sec. 3.5 variant: completion formula `f ∧ d[a ∨ r]` and weakened
/// rules `A(add, f) = d ∧ ¬f`, `A(add, d/a) = ¬(a ∨ r) ∧ ¬../f`,
/// `A(add, d/r) = ¬(a ∨ r) ∧ ¬../f`.
///
/// The paper: "the guarded form is still completable but at the same time
/// it is possible to reach an instance where there is a final field but no
/// approval or reject field. From that instance the form cannot be
/// completed."
pub fn section_3_5_variant() -> GuardedForm {
    let base = example_3_12();
    let schema = base.schema().clone();
    let mut rules = base.rules().clone();
    let edge = |p: &str| schema.resolve(p).expect("rule edge exists");
    rules.set(Right::Add, edge("f"), f("d & !f"));
    rules.set(Right::Add, edge("d/a"), f("!(a | r) & !../f"));
    rules.set(Right::Add, edge("d/r"), f("!(a | r) & !../f"));
    GuardedForm::new(schema, rules, base.initial().clone(), f("f & d[a | r]"))
}

/// The invariant of Sec. 3.5: "by checking completability for
/// `φ = d[a ∧ r]` we can check if at any stage there can be a decision
/// field that contains both accept and reject."
pub fn both_decisions_invariant() -> Formula {
    f("d[a & r]")
}

/// A witness complete run for [`example_3_12`]: create the application,
/// fill in name/department/one period with dates, submit, approve, mark
/// final. Returns the update list; replay it with
/// [`GuardedForm::replay`].
pub fn complete_run(g: &GuardedForm) -> Vec<Update> {
    let schema = g.schema();
    let edge = |p: &str| schema.resolve(p).expect("edge");
    // Node ids are deterministic: the root is 0 and each addition allocates
    // the next id in sequence.
    let root = InstNodeId::ROOT;
    let a = InstNodeId(1);
    let p = InstNodeId(4);
    let d = InstNodeId(8);
    vec![
        Update::Add {
            parent: root,
            edge: edge("a"),
        }, // -> node 1
        Update::Add {
            parent: a,
            edge: edge("a/n"),
        }, // -> node 2
        Update::Add {
            parent: a,
            edge: edge("a/d"),
        }, // -> node 3
        Update::Add {
            parent: a,
            edge: edge("a/p"),
        }, // -> node 4
        Update::Add {
            parent: p,
            edge: edge("a/p/b"),
        }, // -> node 5
        Update::Add {
            parent: p,
            edge: edge("a/p/e"),
        }, // -> node 6
        Update::Add {
            parent: root,
            edge: edge("s"),
        }, // -> node 7
        Update::Add {
            parent: root,
            edge: edge("d"),
        }, // -> node 8
        Update::Add {
            parent: d,
            edge: edge("d/a"),
        }, // -> node 9
        Update::Add {
            parent: root,
            edge: edge("f"),
        }, // -> node 10
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{classify, DepthClass, Polarity};

    #[test]
    fn schema_matches_figure1() {
        let s = schema();
        assert_eq!(s.depth(), 3);
        assert_eq!(s.node_count(), 13);
        for p in [
            "a", "a/n", "a/d", "a/p", "a/p/b", "a/p/e", "s", "d", "d/a", "d/r", "d/r/r", "f",
        ] {
            assert!(s.resolve(p).is_ok(), "missing {p}");
        }
    }

    #[test]
    fn figure2_instances_are_instances() {
        let s = schema();
        let ia = figure2a(s.clone());
        let ib = figure2b(s);
        assert_eq!(ia.live_count(), 11);
        assert_eq!(ib.live_count(), 11);
    }

    #[test]
    fn example_3_12_classifies_as_unrestricted_depth3() {
        let g = example_3_12();
        let frag = classify(&g);
        assert_eq!(frag.access, Polarity::Unrestricted);
        assert_eq!(frag.completion, Polarity::Positive); // φ = f is positive
        assert_eq!(frag.depth, DepthClass::K(3));
    }

    #[test]
    fn complete_run_reaches_completion() {
        let g = example_3_12();
        let run = complete_run(&g);
        assert!(g.is_complete_run(&run), "the witness run must complete");
        let replayed = g.replay(&run).unwrap();
        assert!(g.is_complete(replayed.last()));
        // No intermediate instance is complete.
        for i in &replayed.instances[..replayed.instances.len() - 1] {
            assert!(!g.is_complete(i));
        }
    }

    #[test]
    fn at_most_one_application() {
        // A(add, a) = ¬a: "there cannot be two applications".
        let g = example_3_12();
        let mut inst = g.initial().clone();
        let a_edge = g.schema().resolve("a").unwrap();
        g.apply(
            &mut inst,
            &Update::Add {
                parent: InstNodeId::ROOT,
                edge: a_edge,
            },
        )
        .unwrap();
        assert!(!g.is_allowed(
            &inst,
            &Update::Add {
                parent: InstNodeId::ROOT,
                edge: a_edge
            }
        ));
        // A(del, a) = ¬a: "we can never delete an application field once it
        // has been added".
        assert!(!g.is_allowed(
            &inst,
            &Update::Del {
                node: InstNodeId(1)
            }
        ));
    }

    #[test]
    fn submission_requires_complete_periods() {
        let g = example_3_12();
        let s_edge = g.schema().resolve("s").unwrap();
        // Application with a period missing its end date: cannot submit.
        let inst = Instance::parse(g.schema().clone(), "a(n, d, p(b))").unwrap();
        assert!(!g.is_allowed(
            &inst,
            &Update::Add {
                parent: InstNodeId::ROOT,
                edge: s_edge
            }
        ));
        // With complete periods it can.
        let inst = Instance::parse(g.schema().clone(), "a(n, d, p(b, e))").unwrap();
        assert!(g.is_allowed(
            &inst,
            &Update::Add {
                parent: InstNodeId::ROOT,
                edge: s_edge
            }
        ));
        // Multiple periods: all must be complete.
        let inst = Instance::parse(g.schema().clone(), "a(n, d, p(b, e), p(e))").unwrap();
        assert!(!g.is_allowed(
            &inst,
            &Update::Add {
                parent: InstNodeId::ROOT,
                edge: s_edge
            }
        ));
    }

    #[test]
    fn submission_freezes_application() {
        let g = example_3_12();
        let run = complete_run(&g);
        // Replay up to and including the submit step (index 6).
        let prefix: Vec<_> = run[..7].to_vec();
        let r = g.replay(&prefix).unwrap();
        let inst = r.last();
        // After submission, period fields can no longer change.
        let p_edge = g.schema().resolve("a/p").unwrap();
        let a_node = InstNodeId(1);
        assert!(!g.is_allowed(
            inst,
            &Update::Add {
                parent: a_node,
                edge: p_edge
            }
        ));
        // Begin-date deletion inside the period is also frozen.
        assert!(!g.is_allowed(
            inst,
            &Update::Del {
                node: InstNodeId(5)
            }
        ));
        // And the submit mark itself cannot be retracted (A(del, s) = ¬s).
        assert!(!g.is_allowed(
            inst,
            &Update::Del {
                node: InstNodeId(7)
            }
        ));
    }

    #[test]
    fn decision_exclusive_until_final() {
        let g = example_3_12();
        let run = complete_run(&g);
        // Up to and including approve (index 8).
        let r = g.replay(&run[..9]).unwrap();
        let inst = r.last();
        let d_node = InstNodeId(8);
        // Cannot also reject: A(add, d/r) = ¬(a ∨ r).
        let r_edge = g.schema().resolve("d/r").unwrap();
        assert!(!g.is_allowed(
            inst,
            &Update::Add {
                parent: d_node,
                edge: r_edge
            }
        ));
        // Approve is deletable before final (A(del, d/a) = ¬../f)…
        assert!(g.is_allowed(
            inst,
            &Update::Del {
                node: InstNodeId(9)
            }
        ));
        // …but not after.
        let r2 = g.replay(&run).unwrap();
        assert!(!g.is_allowed(
            r2.last(),
            &Update::Del {
                node: InstNodeId(9)
            }
        ));
    }

    #[test]
    fn variant_still_has_a_complete_run() {
        // Sec. 3.5: "the guarded form is still completable".
        let g = section_3_5_variant();
        let run = complete_run(&g);
        assert!(g.is_complete_run(&run));
    }

    #[test]
    fn variant_reaches_a_stuck_instance() {
        // Sec. 3.5: reach `…, s, d, f` (final without decision). From there
        // the approve/reject guards `¬../f` block forever.
        let g = section_3_5_variant();
        let sch = g.schema();
        let run = [
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: sch.resolve("a").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(1),
                edge: sch.resolve("a/n").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(1),
                edge: sch.resolve("a/d").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(1),
                edge: sch.resolve("a/p").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(4),
                edge: sch.resolve("a/p/b").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(4),
                edge: sch.resolve("a/p/e").unwrap(),
            },
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: sch.resolve("s").unwrap(),
            },
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: sch.resolve("d").unwrap(),
            },
            // Weakened rule lets `f` in before any decision:
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: sch.resolve("f").unwrap(),
            },
        ];
        let r = g.replay(&run).unwrap();
        let stuck = r.last();
        assert!(!g.is_complete(stuck));
        // The decision children are blocked by ¬../f now:
        let d_node = InstNodeId(8);
        for e in ["d/a", "d/r"] {
            assert!(!g.is_allowed(
                stuck,
                &Update::Add {
                    parent: d_node,
                    edge: sch.resolve(e).unwrap()
                }
            ));
        }
        // f cannot be removed either (A(del, f) = ¬f).
        assert!(!g.is_allowed(
            stuck,
            &Update::Del {
                node: InstNodeId(9)
            }
        ));
    }
}
