//! Property-based tests for the core formalism: parser round-trips,
//! instance/schema invariants, and bisimulation laws.

use idar_core::{bisim, formula, Formula, InstNodeId, Instance, Schema, SchemaBuilder};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Schema strategies
// ---------------------------------------------------------------------------

/// A random schema: a sequence of (parent-pick, label-pick) grows the tree.
fn schema_strategy() -> impl Strategy<Value = Arc<Schema>> {
    proptest::collection::vec((0..8usize, 0..5usize), 0..14).prop_map(|ops| {
        let mut b = SchemaBuilder::new();
        let mut nodes = vec![idar_core::SchemaNodeId::ROOT];
        for (parent_pick, label_pick) in ops {
            let parent = nodes[parent_pick % nodes.len()];
            let label = format!("l{label_pick}");
            if let Ok(c) = b.child(parent, &label) {
                nodes.push(c);
            } // duplicate sibling labels are rejected: skip
        }
        Arc::new(b.build())
    })
}

/// A random instance of a given schema (as growth operations).
fn grow_instance(schema: &Arc<Schema>, ops: &[(usize, usize)]) -> Instance {
    let mut inst = Instance::empty(schema.clone());
    let mut nodes = vec![InstNodeId::ROOT];
    for &(parent_pick, child_pick) in ops {
        let p = nodes[parent_pick % nodes.len()];
        let kids = schema.children(inst.schema_node(p));
        if kids.is_empty() {
            continue;
        }
        let e = kids[child_pick % kids.len()];
        let n = inst.add_child(p, e).expect("valid schema edge");
        nodes.push(n);
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Schemas never contain duplicate sibling labels, and resolve/path_of
    /// are mutually inverse.
    #[test]
    fn schema_invariants(schema in schema_strategy()) {
        for n in schema.node_ids() {
            let kids = schema.children(n);
            let mut labels: Vec<&str> = kids.iter().map(|&c| schema.label(c)).collect();
            let before = labels.len();
            labels.sort_unstable();
            labels.dedup();
            prop_assert_eq!(labels.len(), before, "duplicate sibling labels");
            // resolve(path_of(n)) == n
            let path = schema.path_of(n);
            prop_assert_eq!(schema.resolve(&path).unwrap(), n);
        }
        // Depth is consistent with parent depths.
        for n in schema.node_ids() {
            match schema.parent(n) {
                None => prop_assert_eq!(schema.node_depth(n), 0),
                Some(p) => prop_assert_eq!(schema.node_depth(n), schema.node_depth(p) + 1),
            }
        }
    }

    /// Instance growth maintains the homomorphism; parse(render) round-trips
    /// through the iso code.
    #[test]
    fn instance_invariants(
        schema in schema_strategy(),
        ops in proptest::collection::vec((0..16usize, 0..4usize), 0..20),
    ) {
        let inst = grow_instance(&schema, &ops);
        // Homomorphism conditions of Def. 3.1.
        for n in inst.live_nodes() {
            prop_assert_eq!(inst.label(n), schema.label(inst.schema_node(n)));
            if let Some(p) = inst.parent(n) {
                prop_assert_eq!(
                    Some(inst.schema_node(p)),
                    schema.parent(inst.schema_node(n))
                );
            }
        }
        // iso_code is parse-stable: parsing the code back yields an
        // isomorphic instance.
        let code = inst.iso_code();
        if !code.is_empty() {
            let reparsed = Instance::parse(schema.clone(), &code).unwrap();
            prop_assert!(reparsed.isomorphic(&inst));
        } else {
            prop_assert_eq!(inst.live_count(), 1);
        }
    }

    /// Deleting every leaf in any order always reaches the empty instance,
    /// and live counts stay consistent.
    #[test]
    fn deletion_to_empty(
        schema in schema_strategy(),
        ops in proptest::collection::vec((0..16usize, 0..4usize), 0..16),
        picks in proptest::collection::vec(0..32usize, 0..64),
    ) {
        let mut inst = grow_instance(&schema, &ops);
        let mut pick_iter = picks.into_iter();
        while inst.live_count() > 1 {
            let leaves: Vec<InstNodeId> = inst
                .live_nodes()
                .filter(|&n| n != InstNodeId::ROOT && inst.is_leaf(n))
                .collect();
            prop_assert!(!leaves.is_empty(), "non-root nodes but no leaves?");
            let k = pick_iter.next().unwrap_or(0) % leaves.len();
            let before = inst.live_count();
            inst.remove_leaf(leaves[k]).unwrap();
            prop_assert_eq!(inst.live_count(), before - 1);
        }
        prop_assert_eq!(inst.iso_code(), "");
    }

    /// `can` is multiplicity-blind: duplicating any subtree leaves the
    /// canonical instance unchanged.
    #[test]
    fn duplication_is_bisim_invisible(
        schema in schema_strategy(),
        ops in proptest::collection::vec((0..16usize, 0..4usize), 1..16),
        dup_pick in 0..32usize,
    ) {
        let inst = grow_instance(&schema, &ops);
        let candidates: Vec<InstNodeId> = inst
            .live_nodes()
            .filter(|&n| n != InstNodeId::ROOT)
            .collect();
        prop_assume!(!candidates.is_empty());
        let target = candidates[dup_pick % candidates.len()];
        // Duplicate the subtree rooted at `target` under the same parent.
        let mut dup = inst.clone();
        let parent = inst.parent(target).unwrap();
        let copy_root = dup.add_child(parent, inst.schema_node(target)).unwrap();
        let mut stack = vec![(target, copy_root)];
        while let Some((orig, copy)) = stack.pop() {
            let children: Vec<InstNodeId> = inst.children(orig).to_vec();
            for c in children {
                let cc = dup.add_child(copy, inst.schema_node(c)).unwrap();
                stack.push((c, cc));
            }
        }
        prop_assert!(bisim::equivalent(&inst, &dup));
        prop_assert!(!inst.isomorphic(&dup), "duplication changes iso class");
    }

    /// Formula evaluation is invariant under sibling reordering (the trees
    /// are unordered).
    #[test]
    fn evaluation_ignores_sibling_order(
        schema in schema_strategy(),
        ops in proptest::collection::vec((0..16usize, 0..4usize), 0..16),
    ) {
        let inst = grow_instance(&schema, &ops);
        // Rebuild with children added in reverse order of ops.
        let mut rev = ops.clone();
        rev.reverse();
        let inst2 = grow_instance(&schema, &rev);
        // Same multiset of root-child subtrees ⇒ isomorphic? Not in
        // general (parent picks shift), so only compare when codes match.
        if inst.isomorphic(&inst2) {
            for f in ["l0", "l0[l1]", "!l1[!l2]", "l0/l1/..", "l2 & !l0 | l1"] {
                let f = Formula::parse(f).unwrap();
                prop_assert_eq!(
                    formula::holds_at_root(&inst, &f),
                    formula::holds_at_root(&inst2, &f)
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Formula parser fuzz
// ---------------------------------------------------------------------------

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        "[a-e]{1,3}".prop_map(|l| Formula::label(&l)),
        Just(Formula::True),
        Just(Formula::False),
        Just(Formula::Path(idar_core::PathExpr::Parent)),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
            (inner.clone(), "[a-e]{1,2}").prop_map(|(f, l)| {
                Formula::Path(idar_core::PathExpr::Filter(
                    Box::new(idar_core::PathExpr::Label(l)),
                    Box::new(f),
                ))
            }),
            ("[a-e]{1,2}", "[a-e]{1,2}").prop_map(|(a, b)| {
                Formula::Path(idar_core::PathExpr::Seq(
                    Box::new(idar_core::PathExpr::Label(a)),
                    Box::new(idar_core::PathExpr::Label(b)),
                ))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Display → parse is the identity (minimal-parenthesis printing is
    /// correct for every precedence combination).
    #[test]
    fn printer_parser_roundtrip(f in arb_formula()) {
        let printed = f.to_string();
        let reparsed = Formula::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        prop_assert_eq!(f, reparsed);
    }

    /// Normalisation preserves size up to a constant factor (Lemma 4.4
    /// promises linear growth).
    #[test]
    fn normal_form_linear_size(f in arb_formula()) {
        let n = idar_core::formula::StepFormula::from_formula(&f);
        prop_assert!(n.size() <= 3 * f.size() + 2,
            "normal form blew up: {} -> {}", f.size(), n.size());
    }

    /// `is_positive` is stable under to/from normal form.
    #[test]
    fn positivity_consistent(f in arb_formula()) {
        let n = idar_core::formula::StepFormula::from_formula(&f);
        let back = n.to_formula();
        prop_assert_eq!(f.is_positive(), back.is_positive());
    }

    /// Parsing never panics on arbitrary ASCII input.
    #[test]
    fn parser_total(input in "[ -~]{0,40}") {
        let _ = Formula::parse(&input);
        let _ = Schema::parse(&input);
    }
}
