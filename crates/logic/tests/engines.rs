//! Property tests pinning the SAT engines to each other and to brute
//! force, plus the DIMACS `parse ∘ render` fixpoint property.

use idar_logic::dimacs;
use idar_logic::gen::{Rng as _, XorShift};
use idar_logic::prop::{Cnf, Lit};
use idar_logic::Engine;
use proptest::prelude::*;

/// A random CNF as raw structure: (vars, clause literal picks).
fn cnf_strategy() -> impl Strategy<Value = Cnf> {
    (
        1..7usize,
        proptest::collection::vec(proptest::collection::vec((0..7u32, 0..2u8), 0..4), 0..10),
    )
        .prop_map(|(vars, picks)| {
            let clauses: Vec<Vec<Lit>> = picks
                .into_iter()
                .map(|c| {
                    c.into_iter()
                        .map(|(v, pos)| {
                            let v = v % vars as u32;
                            if pos == 1 {
                                Lit::pos(v)
                            } else {
                                Lit::neg(v)
                            }
                        })
                        .collect()
                })
                .collect();
            Cnf::new(clauses).with_vars(vars)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// All three engines agree on the verdict, and every returned model
    /// actually satisfies the CNF (empty and unit clauses included).
    #[test]
    fn engines_agree_and_models_verify(cnf in cnf_strategy()) {
        let brute = Engine::BruteForce.solve(&cnf);
        for engine in [Engine::Cdcl, Engine::Dpll] {
            let model = engine.solve(&cnf);
            prop_assert_eq!(model.is_some(), brute.is_some(), "{} vs brute on {}", engine, &cnf);
            if let Some(m) = model {
                prop_assert!(cnf.eval(&m), "{} returned a non-model for {}", engine, &cnf);
            }
        }
    }

    /// `parse ∘ render` is the identity on CNFs, and `render ∘ parse` is
    /// a fixpoint on rendered documents.
    #[test]
    fn dimacs_roundtrip_fixpoint(cnf in cnf_strategy()) {
        let text = dimacs::render(&cnf);
        let back = dimacs::parse(&text).expect("rendered CNF parses");
        prop_assert_eq!(&back, &cnf);
        prop_assert_eq!(dimacs::render(&back), text);
    }
}

/// Exhaustive: every CNF with ≤ 2 clauses over a 2-variable literal menu
/// (including empty clauses), engines vs brute force.
#[test]
fn exhaustive_small_cnfs() {
    let menu: Vec<Vec<Lit>> = vec![
        vec![],
        vec![Lit::pos(0)],
        vec![Lit::neg(0)],
        vec![Lit::pos(1)],
        vec![Lit::pos(0), Lit::neg(1)],
        vec![Lit::neg(0), Lit::pos(1)],
        vec![Lit::pos(0), Lit::pos(1)],
        vec![Lit::neg(0), Lit::neg(1)],
    ];
    let mut checked = 0;
    for a in 0..menu.len() {
        for b in 0..menu.len() {
            for c in 0..menu.len() {
                let cnf =
                    Cnf::new(vec![menu[a].clone(), menu[b].clone(), menu[c].clone()]).with_vars(2);
                let expected = cnf.brute_force().is_some();
                for engine in [Engine::Cdcl, Engine::Dpll] {
                    assert_eq!(
                        engine.solve(&cnf).is_some(),
                        expected,
                        "{engine} on ({a},{b},{c})"
                    );
                }
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 512);
}

/// Seeded structured families: implication chains (SAT), chains with a
/// contradicted head (UNSAT), pigeonhole (UNSAT) — CDCL vs DPLL.
#[test]
fn seeded_structured_families() {
    let mut rng = XorShift::new(0xFA111E5);
    for _ in 0..25 {
        let n = rng.range(5, 400) as u32;
        let mut clauses = vec![vec![Lit::pos(0)]];
        for i in 0..n - 1 {
            clauses.push(vec![Lit::neg(i), Lit::pos(i + 1)]);
        }
        let sat_chain = Cnf::new(clauses.clone());
        let mut unsat = clauses.clone();
        unsat.push(vec![Lit::neg(n - 1)]);
        let unsat_chain = Cnf::new(unsat);
        for engine in [Engine::Cdcl, Engine::Dpll] {
            assert!(engine.solve(&sat_chain).is_some(), "{engine} chain n={n}");
            assert!(
                engine.solve(&unsat_chain).is_none(),
                "{engine} ¬chain n={n}"
            );
        }
    }
    for holes in 2..5u32 {
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..holes + 1 {
            clauses.push((0..holes).map(|j| Lit::pos(holes * i + j)).collect());
        }
        for j in 0..holes {
            for i1 in 0..holes + 1 {
                for i2 in (i1 + 1)..holes + 1 {
                    clauses.push(vec![Lit::neg(holes * i1 + j), Lit::neg(holes * i2 + j)]);
                }
            }
        }
        let php = Cnf::new(clauses);
        for engine in [Engine::Cdcl, Engine::Dpll] {
            assert!(engine.solve(&php).is_none(), "{engine} PHP({holes})");
        }
    }
}

/// Seeded random 3-CNF around the phase-transition ratio, CDCL vs DPLL.
#[test]
fn seeded_random_threshold_family() {
    for seed in 0..40u64 {
        let cnf = idar_logic::gen::random_3cnf(seed * 13 + 1, 12, 51);
        let cdcl = Engine::Cdcl.solve(&cnf);
        let dpll = Engine::Dpll.solve(&cnf);
        assert_eq!(cdcl.is_some(), dpll.is_some(), "seed {seed}");
        for (name, model) in [("cdcl", cdcl), ("dpll", dpll)] {
            if let Some(m) = model {
                assert!(cnf.eval(&m), "{name} model seed {seed}");
            }
        }
    }
}

/// The DIMACS dialect extras — comment lines, `%` lines, clauses spanning
/// lines — parse to the same CNF as the canonical rendering.
#[test]
fn dimacs_dialect_extras_roundtrip() {
    let mut rng = XorShift::new(0xD1A);
    for case in 0..50 {
        let cnf = idar_logic::gen::random_3cnf(rng.next_u64(), rng.range(3, 8), rng.range(1, 12));
        // Build a messy but equivalent document.
        let mut text = String::from("c generated by the engines property suite\n");
        text.push_str(&format!("p cnf {} {}\n", cnf.vars, cnf.clauses.len()));
        for clause in &cnf.clauses {
            for (i, l) in clause.0.iter().enumerate() {
                let v = l.var.0 as i64 + 1;
                let lit = if l.positive { v } else { -v };
                if rng.chance(1, 3) {
                    text.push_str(&format!("{lit}\n")); // clause spans lines
                    if rng.chance(1, 4) {
                        text.push_str("c interleaved comment\n");
                    }
                } else {
                    text.push_str(&format!("{lit} "));
                }
                if i + 1 == clause.0.len() {
                    text.push_str("0\n");
                }
            }
            if rng.chance(1, 5) {
                text.push_str("%\n"); // SATLIB-style separator line
            }
        }
        text.push_str("%\nc trailing comment\n");
        let parsed = dimacs::parse(&text).unwrap();
        assert_eq!(parsed, cnf, "case {case}");
        // Canonical rendering is a parse fixpoint.
        assert_eq!(dimacs::parse(&dimacs::render(&parsed)).unwrap(), cnf);
    }
}
