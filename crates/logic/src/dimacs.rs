//! DIMACS CNF parsing and serialisation.
//!
//! The de-facto standard exchange format for SAT instances; supporting it
//! means the Thm 5.1 / Thm 5.6 reductions can be fed any off-the-shelf
//! benchmark instance:
//!
//! ```text
//! c a comment
//! p cnf 3 2
//! 1 -2 0
//! 2 3 -1 0
//! ```

use crate::prop::{Cnf, Lit};
use std::fmt::Write as _;

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DIMACS error on line {}: {}", self.line, self.msg)
    }
}
impl std::error::Error for DimacsError {}

fn err(line: usize, msg: impl Into<String>) -> DimacsError {
    DimacsError {
        line,
        msg: msg.into(),
    }
}

/// Parse a DIMACS CNF document.
///
/// Accepts the common dialect: `c` comment lines anywhere, one `p cnf
/// <vars> <clauses>` header, clauses as whitespace-separated non-zero
/// literals terminated by `0` (clauses may span lines). The declared
/// variable count is respected even when variables go unused; literals
/// beyond it are an error.
pub fn parse(text: &str) -> Result<Cnf, DimacsError> {
    let mut declared: Option<(usize, usize)> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        // The header keyword must be the standalone token `p` — matching a
        // bare `p` prefix would accept malformed headers like `pcnf 1 1`.
        if line.split_whitespace().next() == Some("p") {
            if declared.is_some() {
                return Err(err(n, "duplicate `p` header"));
            }
            let mut parts = line.split_whitespace().skip(1);
            if parts.next() != Some("cnf") {
                return Err(err(n, "expected `p cnf <vars> <clauses>`"));
            }
            let vars = parts
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| err(n, "bad variable count"))?;
            let ncl = parts
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| err(n, "bad clause count"))?;
            if let Some(extra) = parts.next() {
                return Err(err(n, format!("trailing garbage `{extra}` after header")));
            }
            declared = Some((vars, ncl));
            continue;
        }
        let Some((vars, _)) = declared else {
            return Err(err(n, "clause before `p cnf` header"));
        };
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| err(n, format!("bad literal `{tok}`")))?;
            if v == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let var = v.unsigned_abs() - 1;
                if var as usize >= vars {
                    return Err(err(
                        n,
                        format!("literal {v} exceeds declared {vars} variables"),
                    ));
                }
                current.push(if v > 0 {
                    Lit::pos(var as u32)
                } else {
                    Lit::neg(var as u32)
                });
            }
        }
    }
    let Some((vars, ncl)) = declared else {
        return Err(err(0, "missing `p cnf` header"));
    };
    if !current.is_empty() {
        return Err(err(0, "unterminated clause (missing trailing 0)"));
    }
    if clauses.len() != ncl {
        return Err(err(
            0,
            format!("header declared {ncl} clauses, found {}", clauses.len()),
        ));
    }
    Ok(Cnf::new(clauses).with_vars(vars))
}

/// Serialise a CNF to DIMACS.
pub fn render(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for l in &c.0 {
            let v = l.var.0 as i64 + 1;
            let _ = write!(out, "{} ", if l.positive { v } else { -v });
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::Var;

    #[test]
    fn parses_the_classic_example() {
        let cnf = parse("c example\np cnf 3 2\n1 -2 0\n2 3 -1 0\n").unwrap();
        assert_eq!(cnf.vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].0, vec![Lit::pos(0), Lit::neg(1)]);
    }

    #[test]
    fn clauses_may_span_lines() {
        let cnf = parse("p cnf 2 1\n1\n-2\n0\n").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].0.len(), 2);
    }

    #[test]
    fn roundtrip() {
        let original = crate::gen::random_3cnf(5, 6, 12);
        let text = render(&original);
        let back = parse(&text).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn respects_declared_unused_vars() {
        let cnf = parse("p cnf 10 1\n1 0\n").unwrap();
        assert_eq!(cnf.vars, 10);
        assert_eq!(cnf.used_vars().len(), 1);
        assert!(cnf.used_vars().contains(&Var(0)));
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("1 0\n").is_err()); // clause before header
        assert!(parse("p cnf 1 1\n2 0\n").is_err()); // var out of range
        assert!(parse("p cnf 1 1\n1\n").is_err()); // missing terminator
        assert!(parse("p cnf 1 2\n1 0\n").is_err()); // clause count mismatch
        assert!(parse("p cnf 1 1\np cnf 1 1\n1 0\n").is_err()); // dup header
        assert!(parse("p dnf 1 1\n1 0\n").is_err()); // not cnf
        assert!(parse("p cnf 1 1\nx 0\n").is_err()); // bad literal
    }

    #[test]
    fn malformed_headers_are_rejected() {
        // Regression: `strip_prefix('p')` used to accept `pcnf` as a
        // valid header keyword. `p` must be its own token.
        assert!(parse("pcnf 1 1\n1 0\n").is_err());
        assert!(parse("pdnf 1 1\n1 0\n").is_err());
        assert!(parse("p dnf 1 1\n1 0\n").is_err());
        // Trailing garbage after the clause count.
        assert!(parse("p cnf 1 1 junk\n1 0\n").is_err());
        assert!(parse("p cnf 1 1 2\n1 0\n").is_err());
        // Whitespace variations of the well-formed header still parse.
        assert!(parse("p  cnf  1  1\n1 0\n").is_ok());
        assert!(parse("  p cnf 1 1\n1 0\n").is_ok());
        assert!(parse("p\tcnf\t1\t1\n1 0\n").is_ok());
    }

    #[test]
    fn solves_parsed_instances() {
        // A tiny UNSAT instance in DIMACS: (x) ∧ (¬x).
        let cnf = parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert!(crate::dpll::solve(&cnf).is_none());
        let sat = parse("p cnf 2 2\n1 2 0\n-1 2 0\n").unwrap();
        assert!(crate::dpll::solve(&sat).is_some());
    }
}
