//! The [`SatEngine`] trait: one interface over the workspace's three SAT
//! procedures — [`crate::cdcl`] (the default), [`crate::dpll`] (the
//! differential baseline) and brute force ([`Cnf::brute_force`], for
//! cross-checking tiny instances).
//!
//! Callers that want runtime selection (the fuzz harness's `--engine`
//! flag, the solver layers) use the [`Engine`] enum; `Engine::default()`
//! is CDCL.

use crate::prop::{Assignment, Cnf};
use std::fmt;

/// A complete propositional satisfiability procedure.
pub trait SatEngine {
    /// Engine name as used on CLI flags and in reports.
    fn name(&self) -> &'static str;

    /// Decide satisfiability; a returned assignment must satisfy `cnf`.
    fn solve_cnf(&self, cnf: &Cnf) -> Option<Assignment>;
}

/// The CDCL engine ([`crate::cdcl::solve`]).
pub struct CdclEngine;

impl SatEngine for CdclEngine {
    fn name(&self) -> &'static str {
        "cdcl"
    }

    fn solve_cnf(&self, cnf: &Cnf) -> Option<Assignment> {
        crate::cdcl::solve(cnf)
    }
}

/// The DPLL baseline ([`crate::dpll::solve`]).
pub struct DpllEngine;

impl SatEngine for DpllEngine {
    fn name(&self) -> &'static str {
        "dpll"
    }

    fn solve_cnf(&self, cnf: &Cnf) -> Option<Assignment> {
        crate::dpll::solve(cnf)
    }
}

/// Exhaustive assignment enumeration ([`Cnf::brute_force`]); panics above
/// 24 variables, so only suitable for test-sized instances.
pub struct BruteForceEngine;

impl SatEngine for BruteForceEngine {
    fn name(&self) -> &'static str {
        "brute_force"
    }

    fn solve_cnf(&self, cnf: &Cnf) -> Option<Assignment> {
        cnf.brute_force()
    }
}

/// Runtime-selectable engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Conflict-driven clause learning (the default).
    #[default]
    Cdcl,
    /// The DPLL differential baseline.
    Dpll,
    /// Brute-force enumeration (≤ 24 variables).
    BruteForce,
}

impl Engine {
    /// Every selectable engine, in reporting order.
    pub const ALL: [Engine; 3] = [Engine::Cdcl, Engine::Dpll, Engine::BruteForce];

    /// The trait object behind this selector.
    pub fn as_engine(self) -> &'static dyn SatEngine {
        match self {
            Engine::Cdcl => &CdclEngine,
            Engine::Dpll => &DpllEngine,
            Engine::BruteForce => &BruteForceEngine,
        }
    }

    /// Decide satisfiability with the selected engine.
    pub fn solve(self, cnf: &Cnf) -> Option<Assignment> {
        self.as_engine().solve_cnf(cnf)
    }

    /// Budgeted solve: `None` when the engine's budget ran out before a
    /// verdict (conflicts for CDCL, branch decisions for DPLL — brute
    /// force is already finite via its variable cap and ignores the
    /// budget). Bounded callers use this to keep the workspace's
    /// honest-bounded-search contract when consulting an engine.
    pub fn solve_limited(self, cnf: &Cnf, budget: u64) -> Option<Option<Assignment>> {
        match self {
            Engine::Cdcl => {
                let mut s = crate::cdcl::Cdcl::from_cnf(cnf);
                s.solve_limited(&[], budget)
                    .map(|sat| sat.then(|| s.model()))
            }
            Engine::Dpll => crate::dpll::solve_limited(cnf, budget),
            Engine::BruteForce => Some(cnf.brute_force()),
        }
    }

    /// Parse a CLI name (`cdcl`, `dpll`, `brute_force`/`brute`).
    pub fn from_name(name: &str) -> Option<Engine> {
        match name {
            "cdcl" => Some(Engine::Cdcl),
            "dpll" => Some(Engine::Dpll),
            "brute_force" | "brute" => Some(Engine::BruteForce),
            _ => None,
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_engine().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for e in Engine::ALL {
            assert_eq!(Engine::from_name(e.as_engine().name()), Some(e));
            assert_eq!(e.to_string(), e.as_engine().name());
        }
        assert_eq!(Engine::from_name("brute"), Some(Engine::BruteForce));
        assert_eq!(Engine::from_name("minisat"), None);
        assert_eq!(Engine::default(), Engine::Cdcl);
    }

    #[test]
    fn engines_agree_on_small_instances() {
        for seed in 0..30u64 {
            let cnf = crate::gen::random_3cnf(seed, 5, 3 + (seed as usize % 15));
            let verdicts: Vec<bool> = Engine::ALL
                .iter()
                .map(|e| e.solve(&cnf).is_some())
                .collect();
            assert!(
                verdicts.iter().all(|&v| v == verdicts[0]),
                "seed {seed}: {verdicts:?}"
            );
            for e in Engine::ALL {
                if let Some(m) = e.solve(&cnf) {
                    assert!(cnf.eval(&m), "{e} model must satisfy");
                }
            }
        }
    }
}
