//! Propositional formulas, assignments, and CNF.

use std::collections::BTreeSet;
use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    pub var: Var,
    pub positive: bool,
}

impl Lit {
    pub fn pos(v: u32) -> Lit {
        Lit {
            var: Var(v),
            positive: true,
        }
    }

    pub fn neg(v: u32) -> Lit {
        Lit {
            var: Var(v),
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Truth value under an assignment.
    pub fn eval(self, a: &Assignment) -> bool {
        a.get(self.var) == self.positive
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.var)
        } else {
            write!(f, "!{}", self.var)
        }
    }
}

/// A total assignment over variables `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    bits: Vec<bool>,
}

impl Assignment {
    /// The all-false assignment over `n` variables.
    pub fn all_false(n: usize) -> Assignment {
        Assignment {
            bits: vec![false; n],
        }
    }

    /// Build from a bit vector.
    pub fn from_bits(bits: Vec<bool>) -> Assignment {
        Assignment { bits }
    }

    pub fn len(&self) -> usize {
        self.bits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    pub fn get(&self, v: Var) -> bool {
        self.bits[v.index()]
    }

    pub fn set(&mut self, v: Var, value: bool) {
        self.bits[v.index()] = value;
    }
}

/// A clause: a disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause(pub Vec<Lit>);

impl Clause {
    pub fn eval(&self, a: &Assignment) -> bool {
        self.0.iter().any(|l| l.eval(a))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// The largest variable count [`Cnf::brute_force`] accepts — callers
/// guarding a brute-force consultation share this constant instead of
/// re-hardcoding it.
pub const BRUTE_FORCE_MAX_VARS: usize = 24;

/// A CNF formula: a conjunction of clauses over variables `0..vars`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    pub vars: usize,
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Build from literal lists; `vars` is inferred as max var + 1.
    pub fn new(clauses: Vec<Vec<Lit>>) -> Cnf {
        let vars = clauses
            .iter()
            .flatten()
            .map(|l| l.var.index() + 1)
            .max()
            .unwrap_or(0);
        Cnf {
            vars,
            clauses: clauses.into_iter().map(Clause).collect(),
        }
    }

    /// Fix the variable count explicitly (for formulas with unused vars).
    pub fn with_vars(mut self, vars: usize) -> Cnf {
        assert!(vars >= self.vars, "cannot shrink below used variables");
        self.vars = vars;
        self
    }

    pub fn eval(&self, a: &Assignment) -> bool {
        self.clauses.iter().all(|c| c.eval(a))
    }

    /// Brute-force satisfiability (for cross-checking the search engines
    /// in tests; only usable for small `vars`, see
    /// [`BRUTE_FORCE_MAX_VARS`]).
    pub fn brute_force(&self) -> Option<Assignment> {
        assert!(
            self.vars <= BRUTE_FORCE_MAX_VARS,
            "brute force limited to {BRUTE_FORCE_MAX_VARS} variables"
        );
        for bits in 0u64..(1 << self.vars) {
            let a = Assignment::from_bits((0..self.vars).map(|i| bits >> i & 1 == 1).collect());
            if self.eval(&a) {
                return Some(a);
            }
        }
        None
    }

    /// The set of variables that actually occur.
    pub fn used_vars(&self) -> BTreeSet<Var> {
        self.clauses
            .iter()
            .flat_map(|c| c.0.iter().map(|l| l.var))
            .collect()
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "true");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A general propositional formula (used as QBF matrix; the guarded-form
/// reductions need non-CNF shapes too).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropFormula {
    Const(bool),
    Var(Var),
    Not(Box<PropFormula>),
    And(Box<PropFormula>, Box<PropFormula>),
    Or(Box<PropFormula>, Box<PropFormula>),
}

impl PropFormula {
    pub fn var(v: u32) -> PropFormula {
        PropFormula::Var(Var(v))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> PropFormula {
        PropFormula::Not(Box::new(self))
    }

    pub fn and(self, rhs: PropFormula) -> PropFormula {
        PropFormula::And(Box::new(self), Box::new(rhs))
    }

    pub fn or(self, rhs: PropFormula) -> PropFormula {
        PropFormula::Or(Box::new(self), Box::new(rhs))
    }

    /// Conjunction of an iterator (`true` if empty).
    pub fn conj<I: IntoIterator<Item = PropFormula>>(items: I) -> PropFormula {
        let mut it = items.into_iter();
        match it.next() {
            None => PropFormula::Const(true),
            Some(first) => it.fold(first, PropFormula::and),
        }
    }

    /// Disjunction of an iterator (`false` if empty).
    pub fn disj<I: IntoIterator<Item = PropFormula>>(items: I) -> PropFormula {
        let mut it = items.into_iter();
        match it.next() {
            None => PropFormula::Const(false),
            Some(first) => it.fold(first, PropFormula::or),
        }
    }

    pub fn eval(&self, a: &Assignment) -> bool {
        match self {
            PropFormula::Const(c) => *c,
            PropFormula::Var(v) => a.get(*v),
            PropFormula::Not(f) => !f.eval(a),
            PropFormula::And(x, y) => x.eval(a) && y.eval(a),
            PropFormula::Or(x, y) => x.eval(a) || y.eval(a),
        }
    }

    /// All variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            PropFormula::Const(_) => {}
            PropFormula::Var(v) => {
                out.insert(*v);
            }
            PropFormula::Not(f) => f.collect_vars(out),
            PropFormula::And(x, y) | PropFormula::Or(x, y) => {
                x.collect_vars(out);
                y.collect_vars(out);
            }
        }
    }

    /// Substitute a truth value for a variable, folding constants as the
    /// result is rebuilt (the workhorse of quantifier expansion in
    /// [`crate::qbf`]).
    pub fn substitute(&self, v: Var, value: bool) -> PropFormula {
        match self {
            PropFormula::Const(c) => PropFormula::Const(*c),
            PropFormula::Var(w) if *w == v => PropFormula::Const(value),
            PropFormula::Var(w) => PropFormula::Var(*w),
            PropFormula::Not(f) => match f.substitute(v, value) {
                PropFormula::Const(c) => PropFormula::Const(!c),
                g => g.not(),
            },
            PropFormula::And(x, y) => match (x.substitute(v, value), y.substitute(v, value)) {
                (PropFormula::Const(false), _) | (_, PropFormula::Const(false)) => {
                    PropFormula::Const(false)
                }
                (PropFormula::Const(true), g) | (g, PropFormula::Const(true)) => g,
                (a, b) => a.and(b),
            },
            PropFormula::Or(x, y) => match (x.substitute(v, value), y.substitute(v, value)) {
                (PropFormula::Const(true), _) | (_, PropFormula::Const(true)) => {
                    PropFormula::Const(true)
                }
                (PropFormula::Const(false), g) | (g, PropFormula::Const(false)) => g,
                (a, b) => a.or(b),
            },
        }
    }

    /// Eliminate every `Const` node (unless the whole formula is constant,
    /// in which case that constant is returned).
    pub fn const_fold(&self) -> PropFormula {
        match self {
            PropFormula::Const(c) => PropFormula::Const(*c),
            PropFormula::Var(v) => PropFormula::Var(*v),
            PropFormula::Not(f) => match f.const_fold() {
                PropFormula::Const(c) => PropFormula::Const(!c),
                g => g.not(),
            },
            PropFormula::And(x, y) => match (x.const_fold(), y.const_fold()) {
                (PropFormula::Const(false), _) | (_, PropFormula::Const(false)) => {
                    PropFormula::Const(false)
                }
                (PropFormula::Const(true), g) | (g, PropFormula::Const(true)) => g,
                (a, b) => a.and(b),
            },
            PropFormula::Or(x, y) => match (x.const_fold(), y.const_fold()) {
                (PropFormula::Const(true), _) | (_, PropFormula::Const(true)) => {
                    PropFormula::Const(true)
                }
                (PropFormula::Const(false), g) | (g, PropFormula::Const(false)) => g,
                (a, b) => a.or(b),
            },
        }
    }

    /// Tseitin transformation: an **equisatisfiable** CNF whose variables
    /// `0..min_vars` (and any formula variables beyond) keep their meaning
    /// while gate variables are allocated above them. Any model of the
    /// result, restricted to the original variables, satisfies `self`, and
    /// every model of `self` extends to a model of the result — the
    /// encoding uses full (two-sided) gate clauses.
    pub fn to_cnf_tseitin(&self, min_vars: usize) -> Cnf {
        let folded = self.const_fold();
        let base = self
            .vars()
            .iter()
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0)
            .max(min_vars);
        match folded {
            PropFormula::Const(true) => Cnf::new(vec![]).with_vars(base),
            PropFormula::Const(false) => Cnf::new(vec![vec![]]).with_vars(base),
            f => {
                let mut enc = Tseitin {
                    next: base as u32,
                    clauses: Vec::new(),
                };
                let root = enc.lit(&f);
                enc.clauses.push(vec![root]);
                Cnf::new(enc.clauses).with_vars(enc.next as usize)
            }
        }
    }

    /// View a CNF as a `PropFormula`.
    pub fn from_cnf(cnf: &Cnf) -> PropFormula {
        PropFormula::conj(cnf.clauses.iter().map(|c| {
            PropFormula::disj(c.0.iter().map(|l| {
                let v = PropFormula::Var(l.var);
                if l.positive {
                    v
                } else {
                    v.not()
                }
            }))
        }))
    }
}

/// Recursive Tseitin encoder over a constant-free formula.
struct Tseitin {
    next: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Tseitin {
    /// The literal equivalent to `f`, emitting gate clauses as needed.
    fn lit(&mut self, f: &PropFormula) -> Lit {
        match f {
            PropFormula::Const(_) => unreachable!("const_fold ran first"),
            PropFormula::Var(v) => Lit::pos(v.0),
            PropFormula::Not(g) => self.lit(g).negated(),
            PropFormula::And(x, y) => {
                let a = self.lit(x);
                let b = self.lit(y);
                let g = self.fresh();
                // g ↔ a ∧ b
                self.clauses.push(vec![g.negated(), a]);
                self.clauses.push(vec![g.negated(), b]);
                self.clauses.push(vec![g, a.negated(), b.negated()]);
                g
            }
            PropFormula::Or(x, y) => {
                let a = self.lit(x);
                let b = self.lit(y);
                let g = self.fresh();
                // g ↔ a ∨ b
                self.clauses.push(vec![g.negated(), a, b]);
                self.clauses.push(vec![g, a.negated()]);
                self.clauses.push(vec![g, b.negated()]);
                g
            }
        }
    }

    fn fresh(&mut self) -> Lit {
        let v = self.next;
        self.next += 1;
        Lit::pos(v)
    }
}

impl fmt::Display for PropFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropFormula::Const(c) => write!(f, "{c}"),
            PropFormula::Var(v) => write!(f, "{v}"),
            PropFormula::Not(g) => write!(f, "!({g})"),
            PropFormula::And(x, y) => write!(f, "({x} & {y})"),
            PropFormula::Or(x, y) => write!(f, "({x} | {y})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_eval() {
        let mut a = Assignment::all_false(2);
        a.set(Var(1), true);
        assert!(!Lit::pos(0).eval(&a));
        assert!(Lit::neg(0).eval(&a));
        assert!(Lit::pos(1).eval(&a));
        assert_eq!(Lit::pos(0).negated(), Lit::neg(0));
    }

    #[test]
    fn cnf_eval() {
        // (x0 | !x1) & (x1 | x2)
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::neg(1)],
            vec![Lit::pos(1), Lit::pos(2)],
        ]);
        assert_eq!(cnf.vars, 3);
        let mut a = Assignment::all_false(3);
        assert!(!cnf.eval(&a)); // second clause fails
        a.set(Var(2), true);
        assert!(cnf.eval(&a));
    }

    #[test]
    fn empty_cnf_is_true() {
        let cnf = Cnf::new(vec![]);
        assert!(cnf.eval(&Assignment::all_false(0)));
        assert!(cnf.brute_force().is_some());
    }

    #[test]
    fn empty_clause_is_false() {
        let cnf = Cnf::new(vec![vec![]]);
        assert!(cnf.brute_force().is_none());
    }

    #[test]
    fn brute_force_finds_model() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0)],
            vec![Lit::neg(0), Lit::pos(1)],
            vec![Lit::neg(1), Lit::pos(2)],
        ]);
        let a = cnf.brute_force().unwrap();
        assert!(cnf.eval(&a));
        assert!(a.get(Var(0)) && a.get(Var(1)) && a.get(Var(2)));
    }

    #[test]
    fn prop_formula_matches_cnf() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::neg(1)],
            vec![Lit::pos(1), Lit::pos(2)],
        ]);
        let pf = PropFormula::from_cnf(&cnf);
        for bits in 0u64..8 {
            let a = Assignment::from_bits((0..3).map(|i| bits >> i & 1 == 1).collect());
            assert_eq!(cnf.eval(&a), pf.eval(&a));
        }
    }

    #[test]
    fn substitute_folds_constants() {
        // (x0 ∧ x1) ∨ ¬x0, x0 := true  →  x1.
        let f = PropFormula::var(0)
            .and(PropFormula::var(1))
            .or(PropFormula::var(0).not());
        assert_eq!(f.substitute(Var(0), true), PropFormula::var(1));
        assert_eq!(f.substitute(Var(0), false), PropFormula::Const(true));
    }

    #[test]
    fn tseitin_is_equisatisfiable() {
        // Every assignment of the original variables: the formula holds
        // iff the Tseitin CNF with those values clamped is satisfiable.
        for seed in 0..30u64 {
            let f = crate::gen::random_prop(seed, 4, 7);
            let cnf = f.to_cnf_tseitin(4);
            assert!(cnf.vars >= 4);
            for bits in 0u8..16 {
                let a = Assignment::from_bits((0..4).map(|i| bits >> i & 1 == 1).collect());
                let mut clamped = cnf.clone();
                for i in 0..4u32 {
                    clamped.clauses.push(Clause(vec![if a.get(Var(i)) {
                        Lit::pos(i)
                    } else {
                        Lit::neg(i)
                    }]));
                }
                assert_eq!(
                    clamped.brute_force().is_some(),
                    f.eval(&a),
                    "seed {seed} bits {bits:04b}: {f}"
                );
            }
        }
    }

    #[test]
    fn tseitin_constants() {
        assert!(PropFormula::Const(true)
            .to_cnf_tseitin(2)
            .brute_force()
            .is_some());
        assert!(PropFormula::Const(false)
            .to_cnf_tseitin(2)
            .brute_force()
            .is_none());
        // A formula that folds to a constant.
        let f = PropFormula::var(0).or(PropFormula::var(0).not().or(PropFormula::var(1)));
        // Not constant-foldable syntactically (x0 ∨ (¬x0 ∨ x1)), but sat.
        assert!(f.to_cnf_tseitin(0).brute_force().is_some());
    }

    #[test]
    fn display_roundtrips_visually() {
        let cnf = Cnf::new(vec![vec![Lit::pos(0), Lit::neg(1)]]);
        assert_eq!(cnf.to_string(), "(x0 | !x1)");
    }
}
