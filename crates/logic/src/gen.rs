//! Deterministic (seeded) instance generators for tests and benchmarks.
//!
//! A tiny xorshift PRNG keeps this crate dependency-free; the benchmark
//! harness re-seeds per workload so every run regenerates identical
//! instances.

use crate::prop::{Cnf, Lit, PropFormula};
use crate::qbf::Qbf;

/// Minimal xorshift64* PRNG.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    pub fn new(seed: u64) -> XorShift {
        XorShift { state: seed.max(1) }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A random 3-CNF with `vars` variables and `clauses` clauses (distinct
/// variables within each clause when possible).
pub fn random_3cnf(seed: u64, vars: usize, clauses: usize) -> Cnf {
    assert!(vars >= 1);
    let mut rng = XorShift::new(seed);
    let mut out = Vec::with_capacity(clauses);
    for _ in 0..clauses {
        let mut clause = Vec::with_capacity(3);
        let mut used = Vec::new();
        for _ in 0..3.min(vars) {
            let mut v = rng.below(vars);
            let mut tries = 0;
            while used.contains(&v) && tries < 8 {
                v = rng.below(vars);
                tries += 1;
            }
            used.push(v);
            clause.push(if rng.bool() {
                Lit::pos(v as u32)
            } else {
                Lit::neg(v as u32)
            });
        }
        out.push(clause);
    }
    Cnf::new(out).with_vars(vars)
}

/// A random propositional formula over `vars` variables with `size`
/// internal connectives.
pub fn random_prop(seed: u64, vars: usize, size: usize) -> PropFormula {
    let mut rng = XorShift::new(seed);
    random_prop_inner(&mut rng, vars, size)
}

fn random_prop_inner(rng: &mut XorShift, vars: usize, size: usize) -> PropFormula {
    if size == 0 {
        return PropFormula::var(rng.below(vars) as u32);
    }
    match rng.below(3) {
        0 => random_prop_inner(rng, vars, size - 1).not(),
        1 => {
            let l = size - 1;
            let left = rng.below(l + 1);
            random_prop_inner(rng, vars, left).and(random_prop_inner(rng, vars, l - left))
        }
        _ => {
            let l = size - 1;
            let left = rng.below(l + 1);
            random_prop_inner(rng, vars, left).or(random_prop_inner(rng, vars, l - left))
        }
    }
}

/// A random `QSAT_2k` instance (k ∃/∀ block pairs, n variables each) whose
/// matrix is a random formula over all `2·k·n` variables.
pub fn random_qsat2k(seed: u64, k: usize, n: usize, matrix_size: usize) -> Qbf {
    let vars = 2 * k * n;
    let matrix = random_prop(seed ^ 0x9E3779B97F4A7C15, vars, matrix_size);
    Qbf::qsat2k(k, n, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = random_3cnf(42, 10, 30);
        let b = random_3cnf(42, 10, 30);
        assert_eq!(a, b);
        let c = random_3cnf(43, 10, 30);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes() {
        let cnf = random_3cnf(7, 8, 20);
        assert_eq!(cnf.vars, 8);
        assert_eq!(cnf.clauses.len(), 20);
        for c in &cnf.clauses {
            assert_eq!(c.0.len(), 3);
        }
    }

    #[test]
    fn clause_vars_distinct() {
        let cnf = random_3cnf(11, 20, 50);
        for c in &cnf.clauses {
            let mut vars: Vec<_> = c.0.iter().map(|l| l.var).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3, "clause {c} repeats a variable");
        }
    }

    #[test]
    fn random_prop_size_zero_is_var() {
        assert!(matches!(random_prop(3, 4, 0), PropFormula::Var(_)));
    }

    #[test]
    fn random_qbf_evaluates() {
        // Just exercise determinism + evaluation on small instances.
        for seed in 0..10 {
            let q = random_qsat2k(seed, 1, 2, 6);
            let r1 = q.eval();
            let r2 = random_qsat2k(seed, 1, 2, 6).eval();
            assert_eq!(r1, r2);
        }
    }
}
