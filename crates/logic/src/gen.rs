//! Deterministic (seeded) instance generators for tests and benchmarks.
//!
//! Every generator is expressed against the [`Rng`] trait, so the same
//! construction can be driven by the crate's own [`XorShift`], by the
//! proptest shim's generator, or by `idar-gen`'s per-case seed streams.
//! A tiny xorshift PRNG keeps this crate dependency-free; the benchmark
//! harness re-seeds per workload so every run regenerates identical
//! instances.

use crate::prop::{Cnf, Lit, PropFormula};
use crate::qbf::Qbf;

/// A deterministic source of randomness.
///
/// The one trait every seeded generator in the workspace draws from
/// (CNF/QBF families here, schemas/guards/forms in `idar-gen`). Only
/// [`Rng::next_u64`] is required; the derived helpers define the shared
/// sampling vocabulary so that a generator behaves identically no matter
/// which implementation drives it.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform coin flip.
    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num/den` (`den` > 0).
    fn chance(&mut self, num: u32, den: u32) -> bool {
        (self.next_u64() % u64::from(den)) < u64::from(num)
    }

    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }
}

/// Minimal xorshift64* PRNG.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seed the generator (seed 0 is mapped to 1: xorshift has no zero
    /// state).
    pub fn new(seed: u64) -> XorShift {
        XorShift { state: seed.max(1) }
    }

    /// Derive a decorrelated child generator, advancing `self` once.
    ///
    /// SplitMix64-finalises one output so sibling streams (e.g. one per
    /// fuzz case) do not overlap even for consecutive seeds.
    pub fn split(&mut self) -> XorShift {
        XorShift::new(split_mix(Rng::next_u64(self)))
    }
}

/// One SplitMix64 finalisation step — the recommended way to turn a
/// (seed, index) pair into an independent stream seed.
pub fn split_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng for XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A random 3-CNF with `vars` variables and `clauses` clauses (distinct
/// variables within each clause when possible).
pub fn random_3cnf(seed: u64, vars: usize, clauses: usize) -> Cnf {
    random_3cnf_with(&mut XorShift::new(seed), vars, clauses)
}

/// [`random_3cnf`] driven by an arbitrary [`Rng`].
pub fn random_3cnf_with(rng: &mut impl Rng, vars: usize, clauses: usize) -> Cnf {
    assert!(vars >= 1);
    let mut out = Vec::with_capacity(clauses);
    for _ in 0..clauses {
        let mut clause = Vec::with_capacity(3);
        let mut used = Vec::new();
        for _ in 0..3.min(vars) {
            let mut v = rng.below(vars);
            let mut tries = 0;
            while used.contains(&v) && tries < 8 {
                v = rng.below(vars);
                tries += 1;
            }
            used.push(v);
            clause.push(if rng.bool() {
                Lit::pos(v as u32)
            } else {
                Lit::neg(v as u32)
            });
        }
        out.push(clause);
    }
    Cnf::new(out).with_vars(vars)
}

/// A random propositional formula over `vars` variables with `size`
/// internal connectives.
pub fn random_prop(seed: u64, vars: usize, size: usize) -> PropFormula {
    random_prop_with(&mut XorShift::new(seed), vars, size)
}

/// [`random_prop`] driven by an arbitrary [`Rng`].
pub fn random_prop_with(rng: &mut impl Rng, vars: usize, size: usize) -> PropFormula {
    if size == 0 {
        return PropFormula::var(rng.below(vars) as u32);
    }
    match rng.below(3) {
        0 => random_prop_with(rng, vars, size - 1).not(),
        1 => {
            let l = size - 1;
            let left = rng.below(l + 1);
            random_prop_with(rng, vars, left).and(random_prop_with(rng, vars, l - left))
        }
        _ => {
            let l = size - 1;
            let left = rng.below(l + 1);
            random_prop_with(rng, vars, left).or(random_prop_with(rng, vars, l - left))
        }
    }
}

/// A random `QSAT_2k` instance (k ∃/∀ block pairs, n variables each) whose
/// matrix is a random formula over all `2·k·n` variables.
pub fn random_qsat2k(seed: u64, k: usize, n: usize, matrix_size: usize) -> Qbf {
    let vars = 2 * k * n;
    let matrix = random_prop(seed ^ 0x9E3779B97F4A7C15, vars, matrix_size);
    Qbf::qsat2k(k, n, matrix)
}

/// [`random_qsat2k`] driven by an arbitrary [`Rng`].
pub fn random_qsat2k_with(rng: &mut impl Rng, k: usize, n: usize, matrix_size: usize) -> Qbf {
    let vars = 2 * k * n;
    let matrix = random_prop_with(rng, vars, matrix_size);
    Qbf::qsat2k(k, n, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = random_3cnf(42, 10, 30);
        let b = random_3cnf(42, 10, 30);
        assert_eq!(a, b);
        let c = random_3cnf(43, 10, 30);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes() {
        let cnf = random_3cnf(7, 8, 20);
        assert_eq!(cnf.vars, 8);
        assert_eq!(cnf.clauses.len(), 20);
        for c in &cnf.clauses {
            assert_eq!(c.0.len(), 3);
        }
    }

    #[test]
    fn clause_vars_distinct() {
        let cnf = random_3cnf(11, 20, 50);
        for c in &cnf.clauses {
            let mut vars: Vec<_> = c.0.iter().map(|l| l.var).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3, "clause {c} repeats a variable");
        }
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        let mut sa = a.split();
        let mut sb = b.split();
        assert_eq!(sa.next_u64(), sb.next_u64());
        // The child stream differs from the parent's continuation.
        assert_ne!(a.next_u64(), sa.next_u64());
    }

    #[test]
    fn chance_and_range_bounds() {
        let mut rng = XorShift::new(3);
        for _ in 0..100 {
            assert!(!rng.chance(0, 10));
            assert!(rng.chance(10, 10));
            let v = rng.range(3, 5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn seeded_wrappers_match_with_variants() {
        assert_eq!(
            random_3cnf(42, 10, 30),
            random_3cnf_with(&mut XorShift::new(42), 10, 30)
        );
        assert_eq!(
            random_prop(9, 5, 12),
            random_prop_with(&mut XorShift::new(9), 5, 12)
        );
    }

    #[test]
    fn random_prop_size_zero_is_var() {
        assert!(matches!(random_prop(3, 4, 0), PropFormula::Var(_)));
    }

    #[test]
    fn random_qbf_evaluates() {
        // Just exercise determinism + evaluation on small instances.
        for seed in 0..10 {
            let q = random_qsat2k(seed, 1, 2, 6);
            let r1 = q.eval();
            let r2 = random_qsat2k(seed, 1, 2, 6).eval();
            assert_eq!(r1, r2);
        }
    }
}
