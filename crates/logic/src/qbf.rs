//! Prenex quantified Boolean formulas and the `QSAT_2k` form used by
//! Thm 5.3: `∃x¹₁…x¹ₙ ∀y¹₁…y¹ₙ … ∃xᵏ₁…xᵏₙ ∀yᵏ₁…yᵏₙ ψ` — `2k`
//! alternating blocks starting existentially.
//!
//! Solved by straightforward recursive evaluation (exponential, as
//! PSPACE-completeness warrants for a baseline oracle).

use crate::prop::{Assignment, PropFormula, Var};
use std::fmt;

/// A quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    Exists,
    ForAll,
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Exists => write!(f, "exists"),
            Quantifier::ForAll => write!(f, "forall"),
        }
    }
}

/// A prenex QBF: quantifier blocks over disjoint variables, then a matrix.
///
/// Variables not bound by any block are an error at evaluation time — the
/// constructor checks coverage.
#[derive(Debug, Clone)]
pub struct Qbf {
    pub blocks: Vec<(Quantifier, Vec<Var>)>,
    pub matrix: PropFormula,
    vars: usize,
}

impl Qbf {
    /// Build and validate: blocks must cover every matrix variable exactly
    /// once.
    pub fn new(blocks: Vec<(Quantifier, Vec<Var>)>, matrix: PropFormula) -> Qbf {
        let mut seen = std::collections::BTreeSet::new();
        for (_, vs) in &blocks {
            for v in vs {
                assert!(seen.insert(*v), "variable {v} bound twice");
            }
        }
        for v in matrix.vars() {
            assert!(seen.contains(&v), "matrix variable {v} is unbound");
        }
        let vars = seen.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        Qbf {
            blocks,
            matrix,
            vars,
        }
    }

    /// Number of variables (max index + 1).
    pub fn var_count(&self) -> usize {
        self.vars
    }

    /// Recursive QBF evaluation.
    pub fn eval(&self) -> bool {
        let mut a = Assignment::all_false(self.vars);
        self.eval_from(0, 0, &mut a)
    }

    fn eval_from(&self, block: usize, offset: usize, a: &mut Assignment) -> bool {
        if block == self.blocks.len() {
            return self.matrix.eval(a);
        }
        let (q, vars) = &self.blocks[block];
        if offset == vars.len() {
            return self.eval_from(block + 1, 0, a);
        }
        let v = vars[offset];
        let mut results = [false, false];
        for (i, value) in [false, true].into_iter().enumerate() {
            a.set(v, value);
            results[i] = self.eval_from(block, offset + 1, a);
            // Short-circuit.
            match q {
                Quantifier::Exists if results[i] => return true,
                Quantifier::ForAll if !results[i] => return false,
                _ => {}
            }
        }
        match q {
            Quantifier::Exists => results[0] || results[1],
            Quantifier::ForAll => results[0] && results[1],
        }
    }

    /// Construct a `QSAT_2k` instance: `k` pairs of (∃ block, ∀ block),
    /// each of `n` variables, over matrix `psi`.
    ///
    /// Variable numbering convention (shared with the Thm 5.3 reduction):
    /// block pair `i ∈ 0..k` owns `x`-vars `[2·i·n, 2·i·n + n)` and
    /// `y`-vars `[2·i·n + n, 2·(i+1)·n)`.
    pub fn qsat2k(k: usize, n: usize, psi: PropFormula) -> Qbf {
        let mut blocks = Vec::with_capacity(2 * k);
        for i in 0..k {
            let x: Vec<Var> = (0..n).map(|j| Var((2 * i * n + j) as u32)).collect();
            let y: Vec<Var> = (0..n).map(|j| Var((2 * i * n + n + j) as u32)).collect();
            blocks.push((Quantifier::Exists, x));
            blocks.push((Quantifier::ForAll, y));
        }
        Qbf::new(blocks, psi)
    }

    /// The x-variable `xⁱⱼ` (existential, block pair `i ∈ 0..k`) in the
    /// [`Qbf::qsat2k`] numbering.
    pub fn x(i: usize, j: usize, n: usize) -> Var {
        Var((2 * i * n + j) as u32)
    }

    /// The y-variable `yⁱⱼ` (universal) in the [`Qbf::qsat2k`] numbering.
    pub fn y(i: usize, j: usize, n: usize) -> Var {
        Var((2 * i * n + n + j) as u32)
    }
}

impl fmt::Display for Qbf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (q, vars) in &self.blocks {
            write!(f, "{q} ")?;
            for v in vars {
                write!(f, "{v} ")?;
            }
        }
        write!(f, ". {}", self.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> PropFormula {
        PropFormula::var(i)
    }

    #[test]
    fn simple_exists() {
        // ∃x. x
        let q = Qbf::new(vec![(Quantifier::Exists, vec![Var(0)])], v(0));
        assert!(q.eval());
        // ∃x. x ∧ ¬x
        let q = Qbf::new(
            vec![(Quantifier::Exists, vec![Var(0)])],
            v(0).and(v(0).not()),
        );
        assert!(!q.eval());
    }

    #[test]
    fn simple_forall() {
        // ∀x. x ∨ ¬x
        let q = Qbf::new(
            vec![(Quantifier::ForAll, vec![Var(0)])],
            v(0).or(v(0).not()),
        );
        assert!(q.eval());
        // ∀x. x
        let q = Qbf::new(vec![(Quantifier::ForAll, vec![Var(0)])], v(0));
        assert!(!q.eval());
    }

    #[test]
    fn alternation() {
        // ∃x ∀y. (x ∨ y) — pick x = true.
        let q = Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(0)]),
                (Quantifier::ForAll, vec![Var(1)]),
            ],
            v(0).or(v(1)),
        );
        assert!(q.eval());
        // ∀x ∃y. (x ↔ y) — y can copy x.
        let iff = (v(0).and(v(1))).or(v(0).not().and(v(1).not()));
        let q = Qbf::new(
            vec![
                (Quantifier::ForAll, vec![Var(0)]),
                (Quantifier::Exists, vec![Var(1)]),
            ],
            iff.clone(),
        );
        assert!(q.eval());
        // ∃y ∀x. (x ↔ y) — impossible.
        let iff_flipped = (v(0).and(v(1))).or(v(0).not().and(v(1).not()));
        let q = Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(1)]),
                (Quantifier::ForAll, vec![Var(0)]),
            ],
            iff_flipped,
        );
        assert!(!q.eval());
    }

    #[test]
    fn the_paper_example() {
        // ∃x ∀y ∃z : (x ∨ y ∧ ¬z) — the Cor. 4.5 running example; with
        // Rust-style precedence (∧ over ∨) this is x ∨ (y ∧ ¬z). Pick
        // x = true: holds regardless of y, z. True.
        let q = Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(0)]),
                (Quantifier::ForAll, vec![Var(1)]),
                (Quantifier::Exists, vec![Var(2)]),
            ],
            v(0).or(v(1).and(v(2).not())),
        );
        assert!(q.eval());
    }

    #[test]
    fn qsat2k_numbering() {
        assert_eq!(Qbf::x(0, 0, 2), Var(0));
        assert_eq!(Qbf::y(0, 0, 2), Var(2));
        assert_eq!(Qbf::x(1, 1, 2), Var(5));
        let q = Qbf::qsat2k(2, 2, PropFormula::Const(true));
        assert_eq!(q.blocks.len(), 4);
        assert_eq!(q.var_count(), 8);
        assert!(q.eval());
    }

    #[test]
    fn qsat2k_nontrivial() {
        let n = 1;
        // k=1: ∃x ∀y. (x ∨ y): x := true works. True.
        let x = PropFormula::Var(Qbf::x(0, 0, n));
        let y = PropFormula::Var(Qbf::y(0, 0, n));
        assert!(Qbf::qsat2k(1, n, x.clone().or(y.clone())).eval());
        // ∃x ∀y. (x ∧ y): fails on y = false. False.
        assert!(!Qbf::qsat2k(1, n, x.and(y)).eval());
    }

    #[test]
    #[should_panic(expected = "unbound")]
    fn unbound_variable_panics() {
        Qbf::new(
            vec![(Quantifier::Exists, vec![Var(0)])],
            PropFormula::var(1),
        );
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_binding_panics() {
        Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(0)]),
                (Quantifier::ForAll, vec![Var(0)]),
            ],
            PropFormula::var(0),
        );
    }
}
