//! Prenex quantified Boolean formulas and the `QSAT_2k` form used by
//! Thm 5.3: `∃x¹₁…x¹ₙ ∀y¹₁…y¹ₙ … ∃xᵏ₁…xᵏₙ ∀yᵏ₁…yᵏₙ ψ` — `2k`
//! alternating blocks starting existentially.
//!
//! Solved by straightforward recursive evaluation (exponential, as
//! PSPACE-completeness warrants for a baseline oracle).

use crate::prop::{Assignment, PropFormula, Var};
use std::fmt;

/// A quantifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    Exists,
    ForAll,
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Exists => write!(f, "exists"),
            Quantifier::ForAll => write!(f, "forall"),
        }
    }
}

/// A prenex QBF: quantifier blocks over disjoint variables, then a matrix.
///
/// Variables not bound by any block are an error at evaluation time — the
/// constructor checks coverage.
#[derive(Debug, Clone)]
pub struct Qbf {
    pub blocks: Vec<(Quantifier, Vec<Var>)>,
    pub matrix: PropFormula,
    vars: usize,
}

impl Qbf {
    /// Build and validate: blocks must cover every matrix variable exactly
    /// once.
    pub fn new(blocks: Vec<(Quantifier, Vec<Var>)>, matrix: PropFormula) -> Qbf {
        let mut seen = std::collections::BTreeSet::new();
        for (_, vs) in &blocks {
            for v in vs {
                assert!(seen.insert(*v), "variable {v} bound twice");
            }
        }
        for v in matrix.vars() {
            assert!(seen.contains(&v), "matrix variable {v} is unbound");
        }
        let vars = seen.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        Qbf {
            blocks,
            matrix,
            vars,
        }
    }

    /// Number of variables (max index + 1).
    pub fn var_count(&self) -> usize {
        self.vars
    }

    /// Recursive QBF evaluation.
    pub fn eval(&self) -> bool {
        let mut a = Assignment::all_false(self.vars);
        self.eval_from(0, 0, &mut a)
    }

    fn eval_from(&self, block: usize, offset: usize, a: &mut Assignment) -> bool {
        if block == self.blocks.len() {
            return self.matrix.eval(a);
        }
        let (q, vars) = &self.blocks[block];
        if offset == vars.len() {
            return self.eval_from(block + 1, 0, a);
        }
        let v = vars[offset];
        let mut results = [false, false];
        for (i, value) in [false, true].into_iter().enumerate() {
            a.set(v, value);
            results[i] = self.eval_from(block, offset + 1, a);
            // Short-circuit.
            match q {
                Quantifier::Exists if results[i] => return true,
                Quantifier::ForAll if !results[i] => return false,
                _ => {}
            }
        }
        match q {
            Quantifier::Exists => results[0] || results[1],
            Quantifier::ForAll => results[0] && results[1],
        }
    }

    /// Construct a `QSAT_2k` instance: `k` pairs of (∃ block, ∀ block),
    /// each of `n` variables, over matrix `psi`.
    ///
    /// Variable numbering convention (shared with the Thm 5.3 reduction):
    /// block pair `i ∈ 0..k` owns `x`-vars `[2·i·n, 2·i·n + n)` and
    /// `y`-vars `[2·i·n + n, 2·(i+1)·n)`.
    pub fn qsat2k(k: usize, n: usize, psi: PropFormula) -> Qbf {
        let mut blocks = Vec::with_capacity(2 * k);
        for i in 0..k {
            let x: Vec<Var> = (0..n).map(|j| Var((2 * i * n + j) as u32)).collect();
            let y: Vec<Var> = (0..n).map(|j| Var((2 * i * n + n + j) as u32)).collect();
            blocks.push((Quantifier::Exists, x));
            blocks.push((Quantifier::ForAll, y));
        }
        Qbf::new(blocks, psi)
    }

    /// CDCL-backed evaluation: outer quantifier blocks are expanded by
    /// substitution and the innermost ∃∀ (or ∀∃, by duality) suffix is
    /// decided by an **assumption-based CEGAR loop** over two incremental
    /// [`Cdcl`](crate::cdcl::Cdcl) solvers — the abstraction solver
    /// proposes existential candidates and the check solver refutes them
    /// under assumptions, with learnt clauses persisting across the
    /// near-identical re-solves. Agrees with [`Qbf::eval`] on every input;
    /// exponentially faster on formulas whose matrix propagates well.
    pub fn solve_via_sat(&self) -> bool {
        // Merge adjacent same-quantifier blocks and drop empty ones.
        let mut blocks: Vec<(Quantifier, Vec<Var>)> = Vec::new();
        for (q, vs) in &self.blocks {
            if vs.is_empty() {
                continue;
            }
            match blocks.last_mut() {
                Some((lq, lvs)) if lq == q => lvs.extend_from_slice(vs),
                _ => blocks.push((*q, vs.clone())),
            }
        }
        solve_blocks(&blocks, &self.matrix.const_fold(), self.vars)
    }

    /// The x-variable `xⁱⱼ` (existential, block pair `i ∈ 0..k`) in the
    /// [`Qbf::qsat2k`] numbering.
    pub fn x(i: usize, j: usize, n: usize) -> Var {
        Var((2 * i * n + j) as u32)
    }

    /// The y-variable `yⁱⱼ` (universal) in the [`Qbf::qsat2k`] numbering.
    pub fn y(i: usize, j: usize, n: usize) -> Var {
        Var((2 * i * n + n + j) as u32)
    }
}

/// Recursive driver for [`Qbf::solve_via_sat`]. `matrix` is const-folded;
/// `nvars` bounds the original variable space (Tseitin gates go above it).
fn solve_blocks(blocks: &[(Quantifier, Vec<Var>)], matrix: &PropFormula, nvars: usize) -> bool {
    use crate::cdcl::Cdcl;
    // A constant matrix decides the formula regardless of quantifiers.
    if let PropFormula::Const(b) = matrix {
        return *b;
    }
    match blocks {
        // Coverage (checked in `Qbf::new`) plus const folding guarantee a
        // non-constant matrix still has bound variables.
        [] => unreachable!("non-constant matrix with no quantifier blocks"),
        [(Quantifier::Exists, _)] => Cdcl::from_cnf(&matrix.to_cnf_tseitin(nvars)).solve(),
        [(Quantifier::ForAll, _)] => {
            !Cdcl::from_cnf(&matrix.clone().not().to_cnf_tseitin(nvars)).solve()
        }
        [(Quantifier::Exists, xs), (Quantifier::ForAll, ys)] => {
            cegar_exists_forall(xs, ys, matrix, nvars)
        }
        [(Quantifier::ForAll, xs), (Quantifier::Exists, ys)] => {
            !cegar_exists_forall(xs, ys, &matrix.clone().not().const_fold(), nvars)
        }
        [(q, vs), rest @ ..] => {
            // Three or more alternations: expand the outermost block one
            // variable at a time.
            let (v, remaining) = (vs[0], &vs[1..]);
            let sub: Vec<(Quantifier, Vec<Var>)> = if remaining.is_empty() {
                rest.to_vec()
            } else {
                std::iter::once((*q, remaining.to_vec()))
                    .chain(rest.iter().cloned())
                    .collect()
            };
            let on_true = || solve_blocks(&sub, &matrix.substitute(v, true), nvars);
            let on_false = || solve_blocks(&sub, &matrix.substitute(v, false), nvars);
            match q {
                Quantifier::Exists => on_true() || on_false(),
                Quantifier::ForAll => on_true() && on_false(),
            }
        }
    }
}

/// Decide `∃xs ∀ys. matrix` by counterexample-guided abstraction
/// refinement: the abstraction solver proposes an assignment of `xs`; the
/// check solver (over CNF(¬matrix), solved incrementally **under the
/// candidate as assumptions**) searches for a `ys` counterexample; each
/// counterexample `y*` strengthens the abstraction with a fresh-gated
/// Tseitin copy of `matrix[ys := y*]`. Terminates because every candidate
/// is either certified or eliminated.
fn cegar_exists_forall(xs: &[Var], ys: &[Var], matrix: &PropFormula, nvars: usize) -> bool {
    use crate::cdcl::Cdcl;
    use crate::prop::Lit;
    let mut abstraction = Cdcl::new(nvars);
    let mut check = Cdcl::from_cnf(&matrix.clone().not().to_cnf_tseitin(nvars));
    loop {
        if !abstraction.solve() {
            return false; // no candidate survives the refinements
        }
        let assumptions: Vec<Lit> = xs
            .iter()
            .map(|&v| {
                if abstraction.model_value(v) {
                    Lit::pos(v.0)
                } else {
                    Lit::neg(v.0)
                }
            })
            .collect();
        if !check.solve_with_assumptions(&assumptions) {
            return true; // ¬matrix unsatisfiable under x*: x* wins
        }
        // Refine with the counterexample y*.
        let mut spec = matrix.clone();
        for &y in ys {
            spec = spec.substitute(y, check.model_value(y));
        }
        match spec.const_fold() {
            PropFormula::Const(false) => return false, // no x survives y*
            PropFormula::Const(true) => {
                // Cannot happen (the check solver just falsified matrix
                // under x*, y*); block x* directly to guarantee progress.
                let block: Vec<Lit> = assumptions.iter().map(|l| l.negated()).collect();
                if !abstraction.add_clause(&block) {
                    return false;
                }
            }
            folded => {
                // Fresh Tseitin gates above the abstraction's space.
                if !abstraction.add_cnf(&folded.to_cnf_tseitin(abstraction.num_vars())) {
                    return false;
                }
            }
        }
    }
}

impl fmt::Display for Qbf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (q, vars) in &self.blocks {
            write!(f, "{q} ")?;
            for v in vars {
                write!(f, "{v} ")?;
            }
        }
        write!(f, ". {}", self.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> PropFormula {
        PropFormula::var(i)
    }

    #[test]
    fn simple_exists() {
        // ∃x. x
        let q = Qbf::new(vec![(Quantifier::Exists, vec![Var(0)])], v(0));
        assert!(q.eval());
        // ∃x. x ∧ ¬x
        let q = Qbf::new(
            vec![(Quantifier::Exists, vec![Var(0)])],
            v(0).and(v(0).not()),
        );
        assert!(!q.eval());
    }

    #[test]
    fn simple_forall() {
        // ∀x. x ∨ ¬x
        let q = Qbf::new(
            vec![(Quantifier::ForAll, vec![Var(0)])],
            v(0).or(v(0).not()),
        );
        assert!(q.eval());
        // ∀x. x
        let q = Qbf::new(vec![(Quantifier::ForAll, vec![Var(0)])], v(0));
        assert!(!q.eval());
    }

    #[test]
    fn alternation() {
        // ∃x ∀y. (x ∨ y) — pick x = true.
        let q = Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(0)]),
                (Quantifier::ForAll, vec![Var(1)]),
            ],
            v(0).or(v(1)),
        );
        assert!(q.eval());
        // ∀x ∃y. (x ↔ y) — y can copy x.
        let iff = (v(0).and(v(1))).or(v(0).not().and(v(1).not()));
        let q = Qbf::new(
            vec![
                (Quantifier::ForAll, vec![Var(0)]),
                (Quantifier::Exists, vec![Var(1)]),
            ],
            iff.clone(),
        );
        assert!(q.eval());
        // ∃y ∀x. (x ↔ y) — impossible.
        let iff_flipped = (v(0).and(v(1))).or(v(0).not().and(v(1).not()));
        let q = Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(1)]),
                (Quantifier::ForAll, vec![Var(0)]),
            ],
            iff_flipped,
        );
        assert!(!q.eval());
    }

    #[test]
    fn the_paper_example() {
        // ∃x ∀y ∃z : (x ∨ y ∧ ¬z) — the Cor. 4.5 running example; with
        // Rust-style precedence (∧ over ∨) this is x ∨ (y ∧ ¬z). Pick
        // x = true: holds regardless of y, z. True.
        let q = Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(0)]),
                (Quantifier::ForAll, vec![Var(1)]),
                (Quantifier::Exists, vec![Var(2)]),
            ],
            v(0).or(v(1).and(v(2).not())),
        );
        assert!(q.eval());
    }

    #[test]
    fn qsat2k_numbering() {
        assert_eq!(Qbf::x(0, 0, 2), Var(0));
        assert_eq!(Qbf::y(0, 0, 2), Var(2));
        assert_eq!(Qbf::x(1, 1, 2), Var(5));
        let q = Qbf::qsat2k(2, 2, PropFormula::Const(true));
        assert_eq!(q.blocks.len(), 4);
        assert_eq!(q.var_count(), 8);
        assert!(q.eval());
    }

    #[test]
    fn qsat2k_nontrivial() {
        let n = 1;
        // k=1: ∃x ∀y. (x ∨ y): x := true works. True.
        let x = PropFormula::Var(Qbf::x(0, 0, n));
        let y = PropFormula::Var(Qbf::y(0, 0, n));
        assert!(Qbf::qsat2k(1, n, x.clone().or(y.clone())).eval());
        // ∃x ∀y. (x ∧ y): fails on y = false. False.
        assert!(!Qbf::qsat2k(1, n, x.and(y)).eval());
    }

    #[test]
    fn solve_via_sat_agrees_on_simple_forms() {
        for (blocks, matrix, expected) in [
            (vec![(Quantifier::Exists, vec![Var(0)])], v(0), true),
            (
                vec![(Quantifier::Exists, vec![Var(0)])],
                v(0).and(v(0).not()),
                false,
            ),
            (
                vec![(Quantifier::ForAll, vec![Var(0)])],
                v(0).or(v(0).not()),
                true,
            ),
            (vec![(Quantifier::ForAll, vec![Var(0)])], v(0), false),
            (
                vec![
                    (Quantifier::Exists, vec![Var(0)]),
                    (Quantifier::ForAll, vec![Var(1)]),
                ],
                v(0).or(v(1)),
                true,
            ),
            (
                vec![
                    (Quantifier::ForAll, vec![Var(0)]),
                    (Quantifier::Exists, vec![Var(1)]),
                ],
                (v(0).and(v(1))).or(v(0).not().and(v(1).not())),
                true,
            ),
        ] {
            let q = Qbf::new(blocks, matrix);
            assert_eq!(q.eval(), expected, "{q}");
            assert_eq!(q.solve_via_sat(), expected, "{q}");
        }
        // Constant matrices under any prefix.
        let q = Qbf::qsat2k(1, 1, PropFormula::Const(true));
        assert!(q.solve_via_sat());
        let q = Qbf::qsat2k(1, 1, PropFormula::Const(false));
        assert!(!q.solve_via_sat());
    }

    #[test]
    fn solve_via_sat_agrees_with_eval_on_random_qbfs() {
        use crate::gen::{random_prop, Rng, XorShift};
        let mut rng = XorShift::new(0x2B0F);
        for case in 0..120 {
            let nvars = rng.range(1, 5);
            let mut blocks = Vec::new();
            let mut vars: Vec<Var> = (0..nvars as u32).map(Var).collect();
            // Random block structure over a random variable order.
            for i in (1..vars.len()).rev() {
                vars.swap(i, rng.below(i + 1));
            }
            let mut rest = vars.as_slice();
            while !rest.is_empty() {
                let take = rng.range(1, rest.len());
                let q = if rng.bool() {
                    Quantifier::Exists
                } else {
                    Quantifier::ForAll
                };
                blocks.push((q, rest[..take].to_vec()));
                rest = &rest[take..];
            }
            let matrix = random_prop(rng.next_u64(), nvars, rng.range(0, 10));
            let qbf = Qbf::new(blocks, matrix);
            assert_eq!(qbf.solve_via_sat(), qbf.eval(), "case {case}: {qbf}");
        }
    }

    #[test]
    fn solve_via_sat_agrees_on_qsat2k_families() {
        use crate::gen::random_qsat2k;
        for seed in 0..25 {
            let q = random_qsat2k(seed, 2, 1, 6);
            assert_eq!(q.solve_via_sat(), q.eval(), "seed {seed}: {q}");
        }
        for seed in 0..10 {
            let q = random_qsat2k(seed, 1, 3, 10);
            assert_eq!(q.solve_via_sat(), q.eval(), "seed {seed}: {q}");
        }
    }

    #[test]
    #[should_panic(expected = "unbound")]
    fn unbound_variable_panics() {
        Qbf::new(
            vec![(Quantifier::Exists, vec![Var(0)])],
            PropFormula::var(1),
        );
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_binding_panics() {
        Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(0)]),
                (Quantifier::ForAll, vec![Var(0)]),
            ],
            PropFormula::var(0),
        );
    }
}
