//! A DPLL SAT solver: unit propagation, pure-literal elimination, and
//! first-unassigned branching.
//!
//! This is the independent baseline used to validate the Thm 5.1 and
//! Thm 5.6 reductions: SAT instances are compiled into guarded forms, the
//! guarded-form solvers produce a verdict, and the verdict must match what
//! DPLL says about the original instance.

use crate::prop::{Assignment, Cnf, Lit, Var};

/// Tri-state assignment during search.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    Unset,
    True,
    False,
}

/// Decide satisfiability; returns a satisfying assignment if one exists.
pub fn solve(cnf: &Cnf) -> Option<Assignment> {
    let mut vals = vec![Val::Unset; cnf.vars];
    if dpll(cnf, &mut vals) {
        Some(Assignment::from_bits(
            vals.iter().map(|v| *v == Val::True).collect(),
        ))
    } else {
        None
    }
}

fn lit_val(l: Lit, vals: &[Val]) -> Val {
    match (vals[l.var.index()], l.positive) {
        (Val::Unset, _) => Val::Unset,
        (Val::True, true) | (Val::False, false) => Val::True,
        _ => Val::False,
    }
}

fn dpll(cnf: &Cnf, vals: &mut Vec<Val>) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<Var> = Vec::new();
    loop {
        let mut unit: Option<Lit> = None;
        for clause in &cnf.clauses {
            let mut unassigned = None;
            let mut n_unassigned = 0;
            let mut satisfied = false;
            for &l in &clause.0 {
                match lit_val(l, vals) {
                    Val::True => {
                        satisfied = true;
                        break;
                    }
                    Val::Unset => {
                        n_unassigned += 1;
                        unassigned = Some(l);
                    }
                    Val::False => {}
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => {
                    // Conflict: undo and fail.
                    for v in trail {
                        vals[v.index()] = Val::Unset;
                    }
                    return false;
                }
                1 => {
                    unit = unassigned;
                    break;
                }
                _ => {}
            }
        }
        match unit {
            Some(l) => {
                vals[l.var.index()] = if l.positive { Val::True } else { Val::False };
                trail.push(l.var);
            }
            None => break,
        }
    }

    // Pure-literal elimination.
    let mut seen_pos = vec![false; cnf.vars];
    let mut seen_neg = vec![false; cnf.vars];
    for clause in &cnf.clauses {
        if clause.0.iter().any(|&l| lit_val(l, vals) == Val::True) {
            continue;
        }
        for &l in &clause.0 {
            if lit_val(l, vals) == Val::Unset {
                if l.positive {
                    seen_pos[l.var.index()] = true;
                } else {
                    seen_neg[l.var.index()] = true;
                }
            }
        }
    }
    for i in 0..cnf.vars {
        if vals[i] == Val::Unset && (seen_pos[i] ^ seen_neg[i]) {
            vals[i] = if seen_pos[i] { Val::True } else { Val::False };
            trail.push(Var(i as u32));
        }
    }

    // Check state: all clauses satisfied / any falsified / branch.
    let mut all_satisfied = true;
    let mut branch_var = None;
    for clause in &cnf.clauses {
        let mut satisfied = false;
        let mut has_unset = false;
        for &l in &clause.0 {
            match lit_val(l, vals) {
                Val::True => {
                    satisfied = true;
                    break;
                }
                Val::Unset => {
                    has_unset = true;
                    if branch_var.is_none() {
                        branch_var = Some(l.var);
                    }
                }
                Val::False => {}
            }
        }
        if !satisfied {
            if !has_unset {
                for v in trail {
                    vals[v.index()] = Val::Unset;
                }
                return false;
            }
            all_satisfied = false;
        }
    }
    if all_satisfied {
        // Leave remaining vars Unset (reported as false); success.
        return true;
    }

    let v = branch_var.expect("unsatisfied clause has an unset literal");
    for value in [Val::True, Val::False] {
        vals[v.index()] = value;
        if dpll(cnf, vals) {
            return true;
        }
    }
    vals[v.index()] = Val::Unset;
    for v in trail {
        vals[v.index()] = Val::Unset;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::Lit;

    #[test]
    fn trivial_cases() {
        assert!(solve(&Cnf::new(vec![])).is_some());
        assert!(solve(&Cnf::new(vec![vec![]])).is_none());
        assert!(solve(&Cnf::new(vec![vec![Lit::pos(0)]])).is_some());
        assert!(solve(&Cnf::new(vec![vec![Lit::pos(0)], vec![Lit::neg(0)]])).is_none());
    }

    #[test]
    fn model_is_returned() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::neg(0)],
            vec![Lit::neg(1), Lit::pos(2)],
        ]);
        let a = solve(&cnf).expect("satisfiable");
        assert!(cnf.eval(&a));
    }

    #[test]
    fn unsat_chain() {
        // x0, x0→x1, x1→x2, ¬x2
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0)],
            vec![Lit::neg(0), Lit::pos(1)],
            vec![Lit::neg(1), Lit::pos(2)],
            vec![Lit::neg(2)],
        ]);
        assert!(solve(&cnf).is_none());
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): pigeon i in hole j is var 2i + j.
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..3u32 {
            clauses.push(vec![Lit::pos(2 * i), Lit::pos(2 * i + 1)]);
        }
        for j in 0..2u32 {
            for i1 in 0..3u32 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![Lit::neg(2 * i1 + j), Lit::neg(2 * i2 + j)]);
                }
            }
        }
        assert!(solve(&Cnf::new(clauses)).is_none());
    }

    #[test]
    fn agrees_with_brute_force_exhaustively() {
        // All 3-clause 3-var 3-CNFs over a small literal menu.
        let menu = [
            Lit::pos(0),
            Lit::neg(0),
            Lit::pos(1),
            Lit::neg(1),
            Lit::pos(2),
            Lit::neg(2),
        ];
        let mut checked = 0;
        for a in 0..menu.len() {
            for b in 0..menu.len() {
                for c in 0..menu.len() {
                    let cnf = Cnf::new(vec![
                        vec![menu[a]],
                        vec![menu[b], menu[c]],
                        vec![menu[c].negated(), menu[a]],
                    ]);
                    let dpll_sat = solve(&cnf).is_some();
                    let bf_sat = cnf.brute_force().is_some();
                    assert_eq!(dpll_sat, bf_sat, "menu ({a},{b},{c})");
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 216);
    }

    #[test]
    fn random_instances_cross_checked() {
        // Deterministic pseudo-random 3-CNFs, checked against brute force.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let nvars = 3 + (next() % 6) as usize; // 3..8
            let nclauses = 2 + (next() % 20) as usize;
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u64) as u32;
                    let pos = next() % 2 == 0;
                    clause.push(if pos { Lit::pos(v) } else { Lit::neg(v) });
                }
                clauses.push(clause);
            }
            let cnf = Cnf::new(clauses).with_vars(nvars);
            let dpll_model = solve(&cnf);
            if let Some(m) = &dpll_model {
                assert!(cnf.eval(m), "returned model must satisfy");
            }
            assert_eq!(dpll_model.is_some(), cnf.brute_force().is_some());
        }
    }
}
