//! A DPLL SAT solver with occurrence-indexed unit propagation and an
//! explicit (heap-allocated) decision stack.
//!
//! This is the independent baseline used to validate the Thm 5.1 and
//! Thm 5.6 reductions and to cross-check the CDCL engine
//! ([`crate::cdcl`]) in the differential fuzzer: SAT instances are
//! compiled into guarded forms, the guarded-form solvers produce a
//! verdict, and the verdict must match what DPLL says about the original
//! instance.
//!
//! Two historical defects are deliberately *fixed* here while keeping the
//! search itself naive (no learning, no restarts — that independence is
//! the point of a differential baseline):
//!
//! * unit propagation is driven by per-literal occurrence lists and
//!   per-clause counters instead of rescanning every clause, so a
//!   propagation step costs the size of the affected clauses, not the
//!   size of the formula (the 200k-clause implication chain used to take
//!   tens of seconds; it is now linear);
//! * the branching recursion is an explicit stack of decision frames, so
//!   deep fuzz-generated instances cannot overflow the thread stack.

use crate::prop::{Assignment, Cnf, Lit};

/// Tri-state assignment during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    Unset,
    True,
    False,
}

/// Literal code `var << 1 | sign` for occurrence-list indexing.
fn code(l: Lit) -> usize {
    (l.var.0 as usize) << 1 | usize::from(!l.positive)
}

/// One branching point: variable, trail length at decision time, and
/// whether the second phase was already tried.
struct Frame {
    var: u32,
    trail_mark: usize,
    flipped: bool,
}

/// Indexed solver state.
struct Search<'a> {
    cnf: &'a Cnf,
    vals: Vec<Val>,
    /// Per literal code: indices of clauses containing that literal (one
    /// entry per occurrence).
    occ: Vec<Vec<u32>>,
    /// Per clause: occurrences of still-unassigned variables.
    unassigned: Vec<u32>,
    /// Per clause: occurrences currently evaluating to true.
    true_lits: Vec<u32>,
    /// Number of clauses with at least one true literal.
    sat_clauses: usize,
    /// Assigned literals in order (the undo log).
    trail: Vec<Lit>,
    /// Pending unit literals discovered by propagation.
    units: Vec<Lit>,
}

impl<'a> Search<'a> {
    fn new(cnf: &'a Cnf) -> Search<'a> {
        let mut occ = vec![Vec::new(); cnf.vars * 2];
        let mut unassigned = Vec::with_capacity(cnf.clauses.len());
        for (ci, c) in cnf.clauses.iter().enumerate() {
            for &l in &c.0 {
                occ[code(l)].push(ci as u32);
            }
            unassigned.push(c.0.len() as u32);
        }
        Search {
            cnf,
            vals: vec![Val::Unset; cnf.vars],
            occ,
            true_lits: vec![0; cnf.clauses.len()],
            sat_clauses: 0,
            unassigned,
            trail: Vec::new(),
            units: Vec::new(),
        }
    }

    fn lit_val(&self, l: Lit) -> Val {
        match (self.vals[l.var.index()], l.positive) {
            (Val::Unset, _) => Val::Unset,
            (Val::True, true) | (Val::False, false) => Val::True,
            _ => Val::False,
        }
    }

    /// Assign `l` true and update the clause counters; returns `false` on
    /// an immediate conflict (some clause ran out of literals). Newly-unit
    /// clauses push their forced literal onto `self.units`.
    fn assign(&mut self, l: Lit) -> bool {
        debug_assert_eq!(self.vals[l.var.index()], Val::Unset);
        self.vals[l.var.index()] = if l.positive { Val::True } else { Val::False };
        self.trail.push(l);
        let mut ok = true;
        for i in 0..self.occ[code(l)].len() {
            let ci = self.occ[code(l)][i] as usize;
            self.unassigned[ci] -= 1;
            self.true_lits[ci] += 1;
            if self.true_lits[ci] == 1 {
                self.sat_clauses += 1;
            }
        }
        for i in 0..self.occ[code(l.negated())].len() {
            let ci = self.occ[code(l.negated())][i] as usize;
            self.unassigned[ci] -= 1;
            if self.true_lits[ci] > 0 {
                continue;
            }
            match self.unassigned[ci] {
                0 => ok = false,
                1 => {
                    // Find the single unassigned literal; cost is the
                    // clause width, paid once per unit event. Counters are
                    // per-occurrence, so a clause repeating a literal can
                    // hit 1 with nothing left unassigned — that is a
                    // conflict (all occurrences assigned, none true).
                    match self.cnf.clauses[ci]
                        .0
                        .iter()
                        .copied()
                        .find(|&q| self.lit_val(q) == Val::Unset)
                    {
                        Some(u) => self.units.push(u),
                        None => ok = false,
                    }
                }
                _ => {}
            }
        }
        ok
    }

    /// Undo every assignment past `mark` and clear pending units.
    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let l = self.trail.pop().expect("trail non-empty");
            self.vals[l.var.index()] = Val::Unset;
            for i in 0..self.occ[code(l)].len() {
                let ci = self.occ[code(l)][i] as usize;
                self.unassigned[ci] += 1;
                self.true_lits[ci] -= 1;
                if self.true_lits[ci] == 0 {
                    self.sat_clauses -= 1;
                }
            }
            for i in 0..self.occ[code(l.negated())].len() {
                let ci = self.occ[code(l.negated())][i] as usize;
                self.unassigned[ci] += 1;
            }
        }
        self.units.clear();
    }

    /// Drain the unit queue to fixpoint; `false` on conflict.
    fn propagate(&mut self) -> bool {
        while let Some(u) = self.units.pop() {
            match self.lit_val(u) {
                Val::True => continue,
                Val::False => return false,
                Val::Unset => {
                    if !self.assign(u) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Decide satisfiability; returns a satisfying assignment if one exists.
/// Variables the search never had to assign are reported as false.
pub fn solve(cnf: &Cnf) -> Option<Assignment> {
    solve_limited(cnf, u64::MAX).expect("u64::MAX decisions is effectively unbounded")
}

/// [`solve`] under a **decision budget**: `None` means the budget ran
/// out before a verdict — the hook bounded callers use to keep the
/// honest-bounded-search contract when consulting this engine.
pub fn solve_limited(cnf: &Cnf, max_decisions: u64) -> Option<Option<Assignment>> {
    let mut budget = max_decisions;
    let mut s = Search::new(cnf);
    // Initial units and empty clauses.
    for c in &cnf.clauses {
        match c.0.len() {
            0 => return Some(None),
            1 => s.units.push(c.0[0]),
            _ => {}
        }
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut cursor = 0usize; // round-robin branch variable cursor
    let mut conflict_pending = false;
    loop {
        let conflict = conflict_pending || !s.propagate();
        conflict_pending = false;
        if conflict {
            // Backtrack to the deepest frame with an untried phase.
            loop {
                let Some(mut frame) = stack.pop() else {
                    return Some(None); // no frame left: UNSAT
                };
                s.undo_to(frame.trail_mark);
                if !frame.flipped {
                    frame.flipped = true;
                    let v = frame.var;
                    stack.push(frame);
                    // First phase was true; now try false.
                    if !s.assign(Lit::neg(v)) {
                        continue; // immediate conflict: keep unwinding
                    }
                    break;
                }
            }
            continue;
        }
        if s.sat_clauses == cnf.clauses.len() {
            return Some(Some(Assignment::from_bits(
                s.vals.iter().map(|&v| v == Val::True).collect(),
            )));
        }
        // Branch on the next unassigned variable.
        let mut var = None;
        for _ in 0..cnf.vars {
            if s.vals[cursor] == Val::Unset {
                var = Some(cursor as u32);
                break;
            }
            cursor = (cursor + 1) % cnf.vars;
        }
        let Some(v) = var else {
            // Every variable assigned without conflict: all clauses have
            // lost their unassigned literals, so each must hold a true
            // one (a falsified clause would have conflicted above).
            debug_assert_eq!(s.sat_clauses, cnf.clauses.len());
            return Some(Some(Assignment::from_bits(
                s.vals.iter().map(|&v| v == Val::True).collect(),
            )));
        };
        if budget == 0 {
            return None; // decision budget exhausted: indeterminate
        }
        budget -= 1;
        stack.push(Frame {
            var: v,
            trail_mark: s.trail.len(),
            flipped: false,
        });
        if !s.assign(Lit::pos(v)) {
            conflict_pending = true; // handled as a conflict next iteration
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::Lit;

    #[test]
    fn trivial_cases() {
        assert!(solve(&Cnf::new(vec![])).is_some());
        assert!(solve(&Cnf::new(vec![vec![]])).is_none());
        assert!(solve(&Cnf::new(vec![vec![Lit::pos(0)]])).is_some());
        assert!(solve(&Cnf::new(vec![vec![Lit::pos(0)], vec![Lit::neg(0)]])).is_none());
    }

    #[test]
    fn model_is_returned() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::neg(0)],
            vec![Lit::neg(1), Lit::pos(2)],
        ]);
        let a = solve(&cnf).expect("satisfiable");
        assert!(cnf.eval(&a));
    }

    #[test]
    fn unsat_chain() {
        // x0, x0→x1, x1→x2, ¬x2
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0)],
            vec![Lit::neg(0), Lit::pos(1)],
            vec![Lit::neg(1), Lit::pos(2)],
            vec![Lit::neg(2)],
        ]);
        assert!(solve(&cnf).is_none());
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): pigeon i in hole j is var 2i + j.
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..3u32 {
            clauses.push(vec![Lit::pos(2 * i), Lit::pos(2 * i + 1)]);
        }
        for j in 0..2u32 {
            for i1 in 0..3u32 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![Lit::neg(2 * i1 + j), Lit::neg(2 * i2 + j)]);
                }
            }
        }
        assert!(solve(&Cnf::new(clauses)).is_none());
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::pos(0)],
            vec![Lit::pos(0), Lit::neg(0), Lit::pos(1)],
            vec![Lit::neg(0), Lit::neg(0), Lit::neg(1)],
        ]);
        let a = solve(&cnf).expect("satisfiable");
        assert!(cnf.eval(&a));
    }

    #[test]
    fn agrees_with_brute_force_exhaustively() {
        // All 3-clause 3-var 3-CNFs over a small literal menu.
        let menu = [
            Lit::pos(0),
            Lit::neg(0),
            Lit::pos(1),
            Lit::neg(1),
            Lit::pos(2),
            Lit::neg(2),
        ];
        let mut checked = 0;
        for a in 0..menu.len() {
            for b in 0..menu.len() {
                for c in 0..menu.len() {
                    let cnf = Cnf::new(vec![
                        vec![menu[a]],
                        vec![menu[b], menu[c]],
                        vec![menu[c].negated(), menu[a]],
                    ]);
                    let dpll_sat = solve(&cnf).is_some();
                    let bf_sat = cnf.brute_force().is_some();
                    assert_eq!(dpll_sat, bf_sat, "menu ({a},{b},{c})");
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, 216);
    }

    #[test]
    fn random_instances_cross_checked() {
        // Deterministic pseudo-random 3-CNFs, checked against brute force.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let nvars = 3 + (next() % 6) as usize; // 3..8
            let nclauses = 2 + (next() % 20) as usize;
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u64) as u32;
                    let pos = next() % 2 == 0;
                    clause.push(if pos { Lit::pos(v) } else { Lit::neg(v) });
                }
                clauses.push(clause);
            }
            let cnf = Cnf::new(clauses).with_vars(nvars);
            let dpll_model = solve(&cnf);
            if let Some(m) = &dpll_model {
                assert!(cnf.eval(m), "returned model must satisfy");
            }
            assert_eq!(dpll_model.is_some(), cnf.brute_force().is_some());
        }
    }

    #[test]
    fn decision_budget_is_honoured() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x1) needs at least one branch decision.
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::neg(0), Lit::pos(1)],
        ]);
        assert_eq!(solve_limited(&cnf, 0), None, "budget 0 is indeterminate");
        assert!(solve_limited(&cnf, 10).unwrap().is_some());
        // Propagation-only instances decide without spending any budget.
        let chain = Cnf::new(vec![vec![Lit::pos(0)], vec![Lit::neg(0), Lit::pos(1)]]);
        assert!(solve_limited(&chain, 0).unwrap().is_some());
    }

    #[test]
    fn regression_deep_chain_no_stack_overflow_and_fast() {
        // The 53.6 s / stack-overflow regression: a 200k-clause
        // implication chain must propagate in linear time on the explicit
        // stack. Generous debug-build bound; release is milliseconds.
        let n = 200_000u32;
        let mut clauses = vec![vec![Lit::pos(0)]];
        for i in 0..n - 1 {
            clauses.push(vec![Lit::neg(i), Lit::pos(i + 1)]);
        }
        let cnf = Cnf::new(clauses);
        let t = std::time::Instant::now();
        let a = solve(&cnf).expect("chain is satisfiable");
        assert!(cnf.eval(&a));
        assert!(
            t.elapsed() < std::time::Duration::from_secs(10),
            "chain took {:?}",
            t.elapsed()
        );
    }
}
