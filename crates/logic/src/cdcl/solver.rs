//! The CDCL search core: two-watched-literal propagation, a trail with
//! decision levels, 1UIP conflict analysis with recursive learned-clause
//! minimization, EVSIDS decisions with phase saving, Luby restarts and
//! LBD-based clause-database reduction.

use super::heap::VarHeap;
use crate::prop::{Assignment, Cnf, Lit};

/// Internal literal encoding: `var << 1 | sign` with `sign = 1` for the
/// negative literal, so `l ^ 1` is the complement and the code doubles as
/// an index into watch lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct L(u32);

impl L {
    fn from_lit(l: Lit) -> L {
        L(l.var.0 << 1 | u32::from(!l.positive))
    }

    fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    fn positive(self) -> bool {
        self.0 & 1 == 0
    }

    fn negated(self) -> L {
        L(self.0 ^ 1)
    }

    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Tri-state variable value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    Unset,
    True,
    False,
}

/// Truth value of literal `l` under per-variable values `assign`.
fn val(assign: &[Val], l: L) -> Val {
    match (assign[l.var()], l.positive()) {
        (Val::Unset, _) => Val::Unset,
        (Val::True, true) | (Val::False, false) => Val::True,
        _ => Val::False,
    }
}

/// A stored clause. Watched literals are `lits[0]` and `lits[1]`; the
/// literal a reason clause propagated is always `lits[0]`.
#[derive(Debug, Clone)]
struct ClauseData {
    lits: Vec<L>,
    learnt: bool,
    deleted: bool,
    /// Literal-block distance at learn time (glue); lower survives longer.
    lbd: u32,
}

const NO_REASON: u32 = u32::MAX;

/// Cumulative search statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CdclStats {
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Decisions taken (assumption pseudo-decisions included).
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses deleted by database reductions.
    pub deleted_clauses: u64,
}

/// An incremental CDCL solver over a growing clause set.
///
/// Clauses can be added between `solve` calls and
/// [`Cdcl::solve_with_assumptions`] decides satisfiability under a
/// temporary partial assignment — learnt clauses persist across calls, so
/// re-solving near-identical CNFs (the 2QBF expansion, the reduction
/// layers) amortises the search.
#[derive(Debug, Clone)]
pub struct Cdcl {
    clauses: Vec<ClauseData>,
    /// Per literal code: indices of clauses watching that literal.
    watches: Vec<Vec<u32>>,
    assign: Vec<Val>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<L>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// EVSIDS activity per variable, with the bump increment growing
    /// geometrically (decay by division) and rescaled near overflow.
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    saved_phase: Vec<bool>,
    /// `false` once unsatisfiability was derived at level 0.
    ok: bool,
    seen: Vec<bool>,
    /// Conflicts before the next clause-database reduction.
    reduce_budget: u64,
    /// Search statistics.
    pub stats: CdclStats,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const RESCALE_AT: f64 = 1e100;
const RESTART_BASE: u64 = 128;
const REDUCE_FIRST: u64 = 2000;
const REDUCE_INC: u64 = 500;

impl Cdcl {
    /// A solver over `nvars` variables and no clauses.
    pub fn new(nvars: usize) -> Cdcl {
        let mut s = Cdcl {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarHeap::full(0),
            saved_phase: Vec::new(),
            ok: true,
            seen: Vec::new(),
            reduce_budget: REDUCE_FIRST,
            stats: CdclStats::default(),
        };
        s.ensure_vars(nvars);
        s
    }

    /// A solver preloaded with a CNF.
    pub fn from_cnf(cnf: &Cnf) -> Cdcl {
        let mut s = Cdcl::new(cnf.vars);
        s.add_cnf(cnf);
        s
    }

    /// Number of variables currently tracked.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Grow the variable space to at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.assign.len() < n {
            self.assign.push(Val::Unset);
            self.level.push(0);
            self.reason.push(NO_REASON);
            self.activity.push(0.0);
            self.saved_phase.push(false);
            self.seen.push(false);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
        }
        self.order.grow(n, &self.activity);
    }

    /// Add every clause of `cnf`; returns `false` if the solver became
    /// unsatisfiable at level 0.
    pub fn add_cnf(&mut self, cnf: &Cnf) -> bool {
        self.ensure_vars(cnf.vars);
        for c in &cnf.clauses {
            if !self.add_clause(&c.0) {
                return false;
            }
        }
        true
    }

    /// Add one clause (backtracking to level 0 first); returns `false` if
    /// the solver became unsatisfiable at level 0.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        self.ensure_vars(
            lits.iter()
                .map(|l| l.var.index() + 1)
                .max()
                .unwrap_or(0)
                .max(self.num_vars()),
        );
        // Normalise: dedupe, drop level-0-false literals, detect
        // tautologies and level-0-satisfied clauses.
        let mut ls: Vec<L> = Vec::with_capacity(lits.len());
        for &lit in lits {
            let l = L::from_lit(lit);
            match val(&self.assign, l) {
                Val::True => return true, // satisfied at level 0
                Val::False => continue,   // false at level 0: drop
                Val::Unset => {}
            }
            if ls.contains(&l.negated()) {
                return true; // tautology
            }
            if !ls.contains(&l) {
                ls.push(l);
            }
        }
        match ls.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.assign_lit(ls[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach(ls, false, 0);
                true
            }
        }
    }

    /// Store a clause (len ≥ 2) and watch its first two literals.
    fn attach(&mut self, lits: Vec<L>, learnt: bool, lbd: u32) -> u32 {
        let ci = self.clauses.len() as u32;
        self.watches[lits[0].idx()].push(ci);
        self.watches[lits[1].idx()].push(ci);
        self.clauses.push(ClauseData {
            lits,
            learnt,
            deleted: false,
            lbd,
        });
        ci
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Put `l` on the trail as true at the current decision level.
    fn assign_lit(&mut self, l: L, reason: u32) {
        let v = l.var();
        debug_assert_eq!(self.assign[v], Val::Unset);
        self.assign[v] = if l.positive() { Val::True } else { Val::False };
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Undo the trail back to `level`, saving phases and refilling the
    /// decision heap.
    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let mark = self.trail_lim[level];
        for i in (mark..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.saved_phase[v] = self.assign[v] == Val::True;
            self.assign[v] = Val::Unset;
            self.reason[v] = NO_REASON;
            self.order.insert(v as u32, &self.activity);
        }
        self.trail.truncate(mark);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    /// Two-watched-literal unit propagation to fixpoint; returns the index
    /// of a conflicting clause, if any. Work is proportional to the
    /// watches visited — clause count never enters the bound.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negated();
            let mut ws = std::mem::take(&mut self.watches[false_lit.idx()]);
            let mut i = 0;
            let mut j = 0;
            let mut confl = None;
            'clauses: while i < ws.len() {
                let ci = ws[i];
                i += 1;
                let c = &mut self.clauses[ci as usize];
                if c.deleted {
                    continue; // lazily drop stale watch entries
                }
                if c.lits[0] == false_lit {
                    c.lits.swap(0, 1);
                }
                debug_assert_eq!(c.lits[1], false_lit);
                let first = c.lits[0];
                if val(&self.assign, first) == Val::True {
                    ws[j] = ci;
                    j += 1;
                    continue;
                }
                for k in 2..c.lits.len() {
                    if val(&self.assign, c.lits[k]) != Val::False {
                        c.lits.swap(1, k);
                        let w = c.lits[1];
                        self.watches[w.idx()].push(ci);
                        continue 'clauses;
                    }
                }
                // No replacement watch: unit or conflict.
                ws[j] = ci;
                j += 1;
                if val(&self.assign, first) == Val::False {
                    confl = Some(ci);
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                } else {
                    let v = first.var();
                    self.assign[v] = if first.positive() {
                        Val::True
                    } else {
                        Val::False
                    };
                    self.level[v] = self.decision_level() as u32;
                    self.reason[v] = ci;
                    self.trail.push(first);
                }
            }
            ws.truncate(j);
            // Replacement watches always go to non-false literals, never
            // back onto `false_lit`, so this cannot clobber new entries.
            self.watches[false_lit.idx()] = ws;
            if confl.is_some() {
                return confl;
            }
        }
        None
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > RESCALE_AT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_AT;
            }
            self.var_inc *= 1.0 / RESCALE_AT;
        }
        self.order.bumped(v as u32, &self.activity);
    }

    /// 1UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first, second-highest level at index 1), the backtrack
    /// level, and the clause's LBD.
    fn analyze(&mut self, mut confl: u32) -> (Vec<L>, usize, u32) {
        let mut learnt: Vec<L> = vec![L(0)]; // slot for the asserting literal
        let mut to_clear: Vec<usize> = Vec::new();
        let dl = self.decision_level() as u32;
        let mut counter = 0usize;
        let mut p: Option<L> = None;
        let mut index = self.trail.len();
        loop {
            let start = usize::from(p.is_some()); // skip the implied literal
            for k in start..self.clauses[confl as usize].lits.len() {
                let q = self.clauses[confl as usize].lits[k];
                let v = q.var();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    to_clear.push(v);
                    self.bump(v);
                    if self.level[v] >= dl {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next marked literal on the trail at the conflict level.
            let next = loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var()] && self.level[l.var()] >= dl {
                    break l;
                }
            };
            p = Some(next);
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[next.var()];
            debug_assert_ne!(confl, NO_REASON);
        }
        let uip = p.expect("conflict has a UIP");
        learnt[0] = uip.negated();

        // Recursive minimization: a non-asserting literal is redundant if
        // its reason closure bottoms out in seen or level-0 literals.
        let mut keep = vec![true; learnt.len()];
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            if self.reason[l.var()] != NO_REASON && self.lit_redundant(l, &mut to_clear) {
                keep[i] = false;
            }
        }
        let mut it = keep.iter();
        learnt.retain(|_| *it.next().expect("keep mask aligned"));

        for v in to_clear {
            self.seen[v] = false;
        }

        // Backtrack level: highest level below dl among the kept literals;
        // its literal moves to index 1 so it is watched.
        let mut bt = 0usize;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var()] > self.level[learnt[max_i].var()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level[learnt[1].var()] as usize;
        }

        // LBD: distinct decision levels among the learnt literals.
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        (learnt, bt, lbd)
    }

    /// Can literal `l` be removed from a learnt clause? Walks the
    /// implication graph through reasons; every path must terminate in a
    /// literal that is already in the clause (`seen`) or fixed at level 0.
    /// Successful sub-proofs are memoized via `seen`; failed walks are
    /// rolled back through `to_clear`.
    fn lit_redundant(&mut self, l: L, to_clear: &mut Vec<usize>) -> bool {
        let top = to_clear.len();
        let mut stack = vec![l];
        while let Some(x) = stack.pop() {
            let r = self.reason[x.var()];
            debug_assert_ne!(r, NO_REASON);
            for k in 1..self.clauses[r as usize].lits.len() {
                let q = self.clauses[r as usize].lits[k];
                let v = q.var();
                if self.level[v] == 0 || self.seen[v] {
                    continue;
                }
                if self.reason[v] == NO_REASON {
                    // Reached an unmarked decision: not redundant.
                    for &u in &to_clear[top..] {
                        self.seen[u] = false;
                    }
                    to_clear.truncate(top);
                    return false;
                }
                self.seen[v] = true;
                to_clear.push(v);
                stack.push(q);
            }
        }
        true
    }

    /// Record a learnt clause and assert its first literal.
    fn learn(&mut self, learnt: Vec<L>, lbd: u32) {
        debug_assert!(!learnt.is_empty());
        if learnt.len() == 1 {
            self.assign_lit(learnt[0], NO_REASON);
        } else {
            let first = learnt[0];
            let ci = self.attach(learnt, true, lbd);
            self.assign_lit(first, ci);
        }
    }

    /// Delete roughly half of the learnt clauses, worst LBD first. Glue
    /// clauses (LBD ≤ 2), binary clauses and clauses currently acting as
    /// reasons are kept.
    fn reduce_db(&mut self) {
        let mut locked = vec![false; self.clauses.len()];
        for &l in &self.trail {
            let r = self.reason[l.var()];
            if r != NO_REASON {
                locked[r as usize] = true;
            }
        }
        let mut candidates: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && !c.deleted && !locked[i as usize] && c.lbd > 2 && c.lits.len() > 2
            })
            .collect();
        candidates.sort_by_key(|&i| std::cmp::Reverse(self.clauses[i as usize].lbd));
        for &i in candidates.iter().take(candidates.len() / 2) {
            let c = &mut self.clauses[i as usize];
            c.deleted = true;
            // Free the literal storage now — every reader checks
            // `deleted` first, and watch lists drop stale entries
            // lazily, so a long-lived incremental solver must not keep
            // dead clause bodies alive.
            c.lits = Vec::new();
            self.stats.deleted_clauses += 1;
        }
    }

    /// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …), 1-indexed.
    fn luby(mut x: u64) -> u64 {
        debug_assert!(x >= 1);
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < x {
                k += 1;
            }
            if (1u64 << k) - 1 == x {
                return 1u64 << (k - 1);
            }
            x -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Decide satisfiability of the accumulated clauses.
    pub fn solve(&mut self) -> bool {
        self.solve_with_assumptions(&[])
    }

    /// Decide satisfiability under `assumptions` (each forced true for
    /// this call only). Returns `true` with a complete model available via
    /// [`Cdcl::model`], or `false` if unsatisfiable under the assumptions.
    /// Learnt clauses and activities persist to the next call.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> bool {
        self.solve_limited(assumptions, u64::MAX)
            .expect("u64::MAX conflicts is effectively unbounded")
    }

    /// [`Cdcl::solve_with_assumptions`] under a **conflict budget**:
    /// `None` means the budget ran out before a verdict (the solver is
    /// left consistent at level 0 and reusable; learnt clauses persist).
    /// This is the hook bounded callers (the solver layer's pre-checks)
    /// use to keep the honest-bounded-search contract.
    pub fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<bool> {
        if !self.ok {
            return Some(false);
        }
        let mut budget = max_conflicts;
        self.ensure_vars(
            assumptions
                .iter()
                .map(|l| l.var.index() + 1)
                .max()
                .unwrap_or(0)
                .max(self.num_vars()),
        );
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return Some(false);
        }
        let mut restart_budget = RESTART_BASE;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(false);
                }
                if budget == 0 {
                    self.cancel_until(0);
                    return None; // conflict budget exhausted: indeterminate
                }
                budget -= 1;
                let (learnt, bt, lbd) = self.analyze(confl);
                self.cancel_until(bt);
                self.learn(learnt, lbd);
                self.var_inc *= VAR_DECAY;
                restart_budget = restart_budget.saturating_sub(1);
                if self.reduce_budget > 0 {
                    self.reduce_budget -= 1;
                } else {
                    self.reduce_db();
                    self.reduce_budget = REDUCE_FIRST
                        + REDUCE_INC * (self.stats.deleted_clauses / REDUCE_FIRST.max(1));
                }
                continue;
            }
            if restart_budget == 0 {
                self.stats.restarts += 1;
                restart_budget = RESTART_BASE * Cdcl::luby(self.stats.restarts);
                self.cancel_until(0);
                continue;
            }
            // Assumptions act as pseudo-decisions on the lowest levels.
            if self.decision_level() < assumptions.len() {
                let a = L::from_lit(assumptions[self.decision_level()]);
                match val(&self.assign, a) {
                    Val::True => {
                        // Already implied: open an empty level so the
                        // level↔assumption indexing stays aligned.
                        self.trail_lim.push(self.trail.len());
                    }
                    Val::False => return Some(false), // UNSAT under assumptions
                    Val::Unset => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.assign_lit(a, NO_REASON);
                    }
                }
                continue;
            }
            // EVSIDS decision with phase saving.
            let mut next = None;
            while let Some(v) = self.order.pop(&self.activity) {
                if self.assign[v as usize] == Val::Unset {
                    next = Some(v);
                    break;
                }
            }
            let Some(v) = next else {
                return Some(true); // complete model
            };
            self.stats.decisions += 1;
            self.trail_lim.push(self.trail.len());
            let phase = self.saved_phase[v as usize];
            self.assign_lit(L(v << 1 | u32::from(!phase)), NO_REASON);
        }
    }

    /// The model of the last successful `solve` call (unset variables —
    /// possible only before any solve — read as false).
    pub fn model(&self) -> Assignment {
        Assignment::from_bits(self.assign.iter().map(|&v| v == Val::True).collect())
    }

    /// Truth value of `v` in the current model.
    pub fn model_value(&self, v: crate::prop::Var) -> bool {
        self.assign[v.index()] == Val::True
    }
}
