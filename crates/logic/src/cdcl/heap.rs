//! Indexed binary max-heap over variables, ordered by an external
//! activity array (EVSIDS). The heap stores variable indices; the
//! activity scores live in the solver so decays and rescales never touch
//! the heap structure (relative order is preserved by both).

/// Max-heap of variable indices with O(1) membership lookup.
#[derive(Debug, Clone, Default)]
pub(crate) struct VarHeap {
    heap: Vec<u32>,
    /// `pos[v]` is `v`'s index in `heap`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// A heap containing every variable in `0..n` (all activities start
    /// equal, so insertion order is a valid heap).
    pub fn full(n: usize) -> VarHeap {
        VarHeap {
            heap: (0..n as u32).collect(),
            pos: (0..n).collect(),
        }
    }

    /// Track `n` variables, inserting any new ones.
    pub fn grow(&mut self, n: usize, activity: &[f64]) {
        while self.pos.len() < n {
            let v = self.pos.len() as u32;
            self.pos.push(ABSENT);
            self.insert(v, activity);
        }
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    /// Insert `v` (no-op if present).
    pub fn insert(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Remove and return the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restore the heap property after `v`'s activity increased.
    pub fn bumped(&mut self, v: u32, activity: &[f64]) {
        if let Some(&i) = self.pos.get(v as usize) {
            if i != ABSENT {
                self.sift_up(i, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a;
        self.pos[self.heap[b] as usize] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        // `full` assumes equal activities; unequal scores go through
        // insert, which sifts.
        let activity = [3.0, 1.0, 4.0, 1.5, 9.0];
        let mut h = VarHeap::full(0);
        h.grow(5, &activity);
        let mut out = Vec::new();
        while let Some(v) = h.pop(&activity) {
            out.push(v);
        }
        assert_eq!(out, vec![4, 2, 0, 3, 1]);
    }

    #[test]
    fn reinsert_and_bump() {
        let mut activity = vec![0.0; 4];
        let mut h = VarHeap::full(4);
        assert!(h.contains(2));
        while h.pop(&activity).is_some() {}
        assert!(h.is_empty());
        h.insert(1, &activity);
        h.insert(3, &activity);
        activity[3] = 5.0;
        h.bumped(3, &activity);
        assert_eq!(h.pop(&activity), Some(3));
        assert_eq!(h.pop(&activity), Some(1));
        assert_eq!(h.pop(&activity), None);
    }

    #[test]
    fn grow_adds_fresh_vars() {
        let activity = vec![1.0; 6];
        let mut h = VarHeap::full(3);
        h.grow(6, &activity);
        let mut seen = Vec::new();
        while let Some(v) = h.pop(&activity) {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }
}
