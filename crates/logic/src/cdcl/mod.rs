//! A conflict-driven clause-learning (CDCL) SAT solver — the default
//! engine behind [`crate::sat_solve`].
//!
//! The paper's Thm 5.1 / Thm 5.6 hardness results put propositional
//! solving on the hot path of every satisfiability and semi-soundness
//! reduction check; the naive DPLL baseline rescans every clause per unit
//! propagation, which is quadratic in the clause count. This engine is
//! bounded by propagations instead:
//!
//! * **two-watched-literal propagation** — only clauses whose watch was
//!   falsified are touched;
//! * **trail with decision levels** and non-chronological backjumping;
//! * **1UIP conflict analysis** with recursive learned-clause
//!   minimization;
//! * **EVSIDS decision heuristic** (activity decay by geometric bump
//!   growth) with **phase saving**;
//! * **Luby restarts** and **LBD-based clause-database reduction**;
//! * **incremental solving under assumptions**
//!   ([`Cdcl::solve_with_assumptions`]) — learnt clauses persist across
//!   calls, which the assumption-based 2QBF expansion
//!   ([`crate::qbf::Qbf::solve_via_sat`]) and the reduction layers that
//!   re-solve near-identical CNFs rely on.
//!
//! For one-shot solving use [`solve`]; it matches the
//! [`crate::dpll::solve`] contract (a satisfying [`Assignment`] or
//! `None`), so the two engines are interchangeable behind
//! [`crate::engine::SatEngine`].

mod heap;
mod solver;

pub use solver::{Cdcl, CdclStats};

use crate::prop::{Assignment, Cnf};

/// Decide satisfiability; returns a satisfying assignment if one exists.
pub fn solve(cnf: &Cnf) -> Option<Assignment> {
    let mut s = Cdcl::from_cnf(cnf);
    if s.solve() {
        let model = s.model();
        debug_assert!(cnf.eval(&model), "CDCL produced a non-model");
        Some(model)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::Lit;

    #[test]
    fn trivial_cases() {
        assert!(solve(&Cnf::new(vec![])).is_some());
        assert!(solve(&Cnf::new(vec![vec![]])).is_none());
        assert!(solve(&Cnf::new(vec![vec![Lit::pos(0)]])).is_some());
        assert!(solve(&Cnf::new(vec![vec![Lit::pos(0)], vec![Lit::neg(0)]])).is_none());
    }

    #[test]
    fn model_is_returned() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::neg(0)],
            vec![Lit::neg(1), Lit::pos(2)],
        ]);
        let a = solve(&cnf).expect("satisfiable");
        assert!(cnf.eval(&a));
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        // (x0 ∨ x0), (x0 ∨ ¬x0 ∨ x1), (¬x0 ∨ ¬x0 ∨ ¬x1)
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::pos(0)],
            vec![Lit::pos(0), Lit::neg(0), Lit::pos(1)],
            vec![Lit::neg(0), Lit::neg(0), Lit::neg(1)],
        ]);
        let a = solve(&cnf).expect("satisfiable");
        assert!(cnf.eval(&a));
    }

    #[test]
    fn unsat_chain() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0)],
            vec![Lit::neg(0), Lit::pos(1)],
            vec![Lit::neg(1), Lit::pos(2)],
            vec![Lit::neg(2)],
        ]);
        assert!(solve(&cnf).is_none());
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        // PHP(4,3): pigeon i in hole j is var 3i + j — needs real conflict
        // analysis to stay fast.
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..4u32 {
            clauses.push((0..3).map(|j| Lit::pos(3 * i + j)).collect());
        }
        for j in 0..3u32 {
            for i1 in 0..4u32 {
                for i2 in (i1 + 1)..4 {
                    clauses.push(vec![Lit::neg(3 * i1 + j), Lit::neg(3 * i2 + j)]);
                }
            }
        }
        assert!(solve(&Cnf::new(clauses)).is_none());
    }

    #[test]
    fn agrees_with_brute_force_exhaustively() {
        let menu = [
            Lit::pos(0),
            Lit::neg(0),
            Lit::pos(1),
            Lit::neg(1),
            Lit::pos(2),
            Lit::neg(2),
        ];
        for a in 0..menu.len() {
            for b in 0..menu.len() {
                for c in 0..menu.len() {
                    let cnf = Cnf::new(vec![
                        vec![menu[a]],
                        vec![menu[b], menu[c]],
                        vec![menu[c].negated(), menu[a]],
                    ]);
                    assert_eq!(
                        solve(&cnf).is_some(),
                        cnf.brute_force().is_some(),
                        "menu ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn random_instances_cross_checked() {
        use crate::gen::{random_3cnf, Rng, XorShift};
        let mut rng = XorShift::new(0xCDC1);
        for case in 0..300 {
            let vars = rng.range(3, 9);
            let clauses = rng.range(2, 5 * vars);
            let cnf = random_3cnf(rng.next_u64(), vars, clauses);
            let model = solve(&cnf);
            if let Some(m) = &model {
                assert!(cnf.eval(m), "case {case}: returned model must satisfy");
            }
            assert_eq!(
                model.is_some(),
                cnf.brute_force().is_some(),
                "case {case}: {cnf}"
            );
        }
    }

    #[test]
    fn long_implication_chain_is_fast() {
        // x0 ∧ (xi → xi+1): trivially SAT, quadratic for a rescanning
        // propagator. 50k clauses must be near-instant even in debug.
        let n = 50_000u32;
        let mut clauses = vec![vec![Lit::pos(0)]];
        for i in 0..n - 1 {
            clauses.push(vec![Lit::neg(i), Lit::pos(i + 1)]);
        }
        let cnf = Cnf::new(clauses);
        let t = std::time::Instant::now();
        let a = solve(&cnf).expect("chain is satisfiable");
        assert!(cnf.eval(&a));
        assert!(
            t.elapsed() < std::time::Duration::from_secs(5),
            "chain took {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn assumptions_are_temporary() {
        // (x0 ∨ x1) with assumption ¬x0 forces x1; assumptions clear
        // between calls.
        let cnf = Cnf::new(vec![vec![Lit::pos(0), Lit::pos(1)]]);
        let mut s = Cdcl::from_cnf(&cnf);
        assert!(s.solve_with_assumptions(&[Lit::neg(0)]));
        let m = s.model();
        assert!(!m.get(crate::prop::Var(0)) && m.get(crate::prop::Var(1)));
        assert!(s.solve_with_assumptions(&[Lit::neg(1)]));
        let m = s.model();
        assert!(m.get(crate::prop::Var(0)) && !m.get(crate::prop::Var(1)));
        // Contradictory assumptions: UNSAT under them, SAT again after.
        assert!(!s.solve_with_assumptions(&[Lit::neg(0), Lit::neg(1)]));
        assert!(s.solve());
    }

    #[test]
    fn assumptions_conflicting_with_units() {
        let cnf = Cnf::new(vec![vec![Lit::pos(0)]]);
        let mut s = Cdcl::from_cnf(&cnf);
        assert!(!s.solve_with_assumptions(&[Lit::neg(0)]));
        assert!(s.solve());
        assert!(s.model().get(crate::prop::Var(0)));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Cdcl::new(2);
        assert!(s.solve());
        assert!(s.add_clause(&[Lit::pos(0), Lit::pos(1)]));
        assert!(s.solve());
        assert!(s.add_clause(&[Lit::neg(0)]));
        assert!(s.solve());
        assert!(s.model().get(crate::prop::Var(1)));
        // x1 is already forced at level 0, so adding ¬x1 makes the solver
        // UNSAT immediately — add_clause reports that.
        assert!(!s.add_clause(&[Lit::neg(1)]));
        assert!(!s.solve());
        // Once level-0 UNSAT, the solver stays UNSAT.
        assert!(!s.add_clause(&[Lit::pos(0)]));
        assert!(!s.solve());
    }

    #[test]
    fn incremental_solving_exhaustive_small() {
        // Enumerate all models of a formula by blocking clauses; the
        // count must match brute force.
        use crate::gen::random_3cnf;
        for seed in 0..20u64 {
            let cnf = random_3cnf(seed, 4, 6);
            let mut expected = 0usize;
            for bits in 0u8..16 {
                let a = Assignment::from_bits((0..4).map(|i| bits >> i & 1 == 1).collect());
                if cnf.eval(&a) {
                    expected += 1;
                }
            }
            let mut s = Cdcl::from_cnf(&cnf);
            let mut found = 0usize;
            while s.solve() {
                found += 1;
                assert!(found <= 16, "runaway model enumeration");
                let m = s.model();
                let block: Vec<Lit> = (0..4u32)
                    .map(|v| {
                        if m.get(crate::prop::Var(v)) {
                            Lit::neg(v)
                        } else {
                            Lit::pos(v)
                        }
                    })
                    .collect();
                s.add_clause(&block);
            }
            assert_eq!(found, expected, "seed {seed}: {cnf}");
        }
    }

    #[test]
    fn conflict_budget_is_honoured() {
        // PHP(4,3) needs real conflicts; a budget of 1 cannot decide it.
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..4u32 {
            clauses.push((0..3).map(|j| Lit::pos(3 * i + j)).collect());
        }
        for j in 0..3u32 {
            for i1 in 0..4u32 {
                for i2 in (i1 + 1)..4 {
                    clauses.push(vec![Lit::neg(3 * i1 + j), Lit::neg(3 * i2 + j)]);
                }
            }
        }
        let cnf = Cnf::new(clauses);
        let mut s = Cdcl::from_cnf(&cnf);
        assert_eq!(s.solve_limited(&[], 1), None, "budget 1 is indeterminate");
        // The solver stays reusable and eventually decides.
        assert_eq!(s.solve_limited(&[], u64::MAX), Some(false));
        // Propagation-only instances decide without spending any budget.
        let unit = Cnf::new(vec![vec![Lit::pos(0)]]);
        assert_eq!(Cdcl::from_cnf(&unit).solve_limited(&[], 0), Some(true));
    }

    #[test]
    fn stats_accumulate() {
        let cnf = crate::gen::random_3cnf(5, 8, 34);
        let mut s = Cdcl::from_cnf(&cnf);
        s.solve();
        assert!(s.stats.propagations > 0);
    }

    #[test]
    fn hard_random_instances_near_threshold() {
        // Ratio ~4.26 around the SAT/UNSAT threshold exercises restarts,
        // learning and DB reduction paths.
        use crate::gen::random_3cnf;
        for seed in 0..10u64 {
            let cnf = random_3cnf(seed * 77 + 3, 20, 85);
            let model = solve(&cnf);
            if let Some(m) = &model {
                assert!(cnf.eval(m));
            }
            assert_eq!(model.is_some(), crate::dpll::solve(&cnf).is_some());
        }
    }
}
