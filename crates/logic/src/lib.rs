//! # idar-logic
//!
//! Propositional substrate for the paper's hardness reductions:
//!
//! * [`prop`] — propositional formulas (AST, parser, evaluation) and CNF.
//! * [`dpll`] — a DPLL SAT solver (unit propagation + pure literals),
//!   the *baseline* the Thm 5.1 / Thm 5.6 reductions are validated
//!   against.
//! * [`qbf`] — prenex quantified Boolean formulas with alternating blocks
//!   (`QSAT_2k`) and a recursive evaluation solver, the baseline for
//!   Thm 5.3 / Cor. 5.4 and for Cor. 4.5's PSPACE encoding.
//! * [`gen`] — the workspace-wide [`gen::Rng`] trait plus seeded random
//!   instance generators for tests, the benchmark harness and `idar-gen`.
//! * [`dimacs`] — DIMACS CNF I/O, so the reductions can consume standard
//!   benchmark instances.
//!
//! Everything here is implemented from scratch — the paper treats SAT and
//! QSAT as known-hard problems; we need executable versions to round-trip
//! the reductions.

pub mod dimacs;
pub mod dpll;
pub mod gen;
pub mod prop;
pub mod qbf;

pub use dpll::solve as sat_solve;
pub use prop::{Assignment, Clause, Cnf, Lit, PropFormula, Var};
pub use qbf::{Qbf, Quantifier};
