//! # idar-logic
//!
//! Propositional substrate for the paper's hardness reductions:
//!
//! * [`prop`] — propositional formulas (AST, parser, evaluation), CNF and
//!   the Tseitin transformation.
//! * [`cdcl`] — the production CDCL SAT engine (two-watched-literal
//!   propagation, 1UIP learning, EVSIDS + phase saving, Luby restarts,
//!   LBD clause-DB reduction, incremental assumptions) behind
//!   [`sat_solve`].
//! * [`dpll`] — a DPLL SAT solver with occurrence-indexed unit
//!   propagation, the independent *baseline* the Thm 5.1 / Thm 5.6
//!   reductions and the CDCL engine are validated against.
//! * [`engine`] — the [`engine::SatEngine`] trait and [`engine::Engine`]
//!   selector unifying `cdcl` / `dpll` / `brute_force`.
//! * [`qbf`] — prenex quantified Boolean formulas with alternating blocks
//!   (`QSAT_2k`), a recursive evaluation solver (the baseline for
//!   Thm 5.3 / Cor. 5.4 and for Cor. 4.5's PSPACE encoding) and the
//!   CDCL-backed assumption-based expansion
//!   ([`qbf::Qbf::solve_via_sat`]).
//! * [`gen`] — the workspace-wide [`gen::Rng`] trait plus seeded random
//!   instance generators for tests, the benchmark harness and `idar-gen`.
//! * [`dimacs`] — DIMACS CNF I/O, so the reductions can consume standard
//!   benchmark instances.
//!
//! Everything here is implemented from scratch — the paper treats SAT and
//! QSAT as known-hard problems; we need executable versions to round-trip
//! the reductions.

#![forbid(unsafe_code)]

pub mod cdcl;
pub mod dimacs;
pub mod dpll;
pub mod engine;
pub mod gen;
pub mod prop;
pub mod qbf;

pub use cdcl::solve as sat_solve;
pub use engine::{Engine, SatEngine};
pub use prop::{Assignment, Clause, Cnf, Lit, PropFormula, Var};
pub use qbf::{Qbf, Quantifier};
