//! Figure benches — Figures 1–3 and the running example.
//!
//! * `figure1` / `figure2` — building and validating the leave schema and
//!   its instances (cheap; regression guards for the core structures).
//! * `figure3_canon/*` — canonicalisation (Def. 3.8 quotient) on the
//!   Figure 3 instance and on growing random instances.
//! * `leave_workflow/*` — Example 3.12 end-to-end: replaying the complete
//!   run, checking the Sec. 3.5 claims through the solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idar_bench::workloads;
use idar_core::{bisim, leave, Instance, Schema};
use idar_solver::semisound::{semisoundness, SemisoundnessOptions};
use idar_solver::{completability, CompletabilityOptions, ExploreLimits, Verdict};
use std::sync::Arc;

fn figure1_and_2(c: &mut Criterion) {
    c.bench_function("figures/figure1_schema", |b| {
        b.iter(|| {
            let s = leave::schema();
            assert_eq!(s.depth(), 3);
            criterion::black_box(s.render())
        })
    });
    c.bench_function("figures/figure2_instances", |b| {
        let s = leave::schema();
        b.iter(|| {
            let a = leave::figure2a(s.clone());
            let bb = leave::figure2b(s.clone());
            assert_eq!(a.live_count() + bb.live_count(), 22);
        })
    });
}

fn figure3_canon(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/figure3_canon");
    // The Figure 3 instance itself.
    let s = Arc::new(Schema::parse("a(c(e), d), b(c, d(e))").unwrap());
    let fig3 = Instance::parse(
        s,
        "a(c, c(e)), a(c, c(e)), a(c(e), c(e)), a(c(e)), b(c, d(e), d(e))",
    )
    .unwrap();
    group.bench_function("paper_instance", |b| {
        b.iter(|| {
            let can = bisim::canonical(&fig3);
            assert_eq!(can.live_count(), 12);
        })
    });
    // Scaling on random instances.
    for nodes in [50usize, 200, 800, 3200] {
        let inst = workloads::random_instance(42, 40, nodes);
        group.bench_with_input(BenchmarkId::new("random", nodes), &inst, |b, inst| {
            b.iter(|| criterion::black_box(bisim::canonical(inst)))
        });
    }
    group.finish();
}

fn leave_workflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/leave_workflow");
    group.sample_size(10);
    group.bench_function("complete_run_replay", |b| {
        let g = leave::example_3_12();
        let run = leave::complete_run(&g);
        b.iter(|| assert!(g.is_complete_run(&run)))
    });
    group.bench_function("ex312_completable", |b| {
        let g = leave::example_3_12();
        b.iter(|| {
            let r = completability(&g, &CompletabilityOptions::default());
            assert_eq!(r.verdict, Verdict::Holds);
        })
    });
    group.bench_function("sec35_not_semisound", |b| {
        let g = leave::section_3_5_variant();
        let opts = SemisoundnessOptions {
            limits: ExploreLimits {
                multiplicity_cap: Some(1),
                max_states: 50_000,
                ..ExploreLimits::small()
            },
            ..Default::default()
        };
        b.iter(|| {
            let r = semisoundness(&g, &opts);
            assert_eq!(r.verdict, Verdict::Fails);
        })
    });
    group.finish();
}

criterion_group!(benches, figure1_and_2, figure3_canon, leave_workflow);
criterion_main!(benches);
