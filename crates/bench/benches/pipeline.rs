//! Unified analysis pipeline benches.
//!
//! * `pipeline/symmetry/*` — symmetry-reduced (canonical quotient)
//!   exploration vs the plain ordered-tree baseline on
//!   `subset_lattice(n)`: the reduced space is `2ⁿ`, the plain space
//!   `Σ_k n!/(n−k)!` — the gap is what the StateStore's canonical
//!   interning buys.
//! * `pipeline/cache/*` — cold [`analyze`] vs cached re-analysis through
//!   a shared [`VerdictCache`] of the identical `AnalysisRequest`.
//! * `pipeline/manager_safe_updates` — the FormManager's cached
//!   `safe_updates` sweep, cold cache vs warm.
//!
//! Verdict agreement is asserted inside every timed body, so a
//! divergence fails the bench run loudly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idar_bench::workloads;
use idar_solver::{
    analyze, analyze_with, AnalysisRequest, Budget, ExploreLimits, Explorer, Method, SymmetryMode,
    Verdict, VerdictCache,
};
use idar_workflow::manager::{FormManager, UnknownPolicy};

fn symmetry_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/symmetry");
    group.sample_size(5);
    for n in [6usize, 8] {
        let w = workloads::subset_lattice(n);
        let limits = ExploreLimits {
            max_states: 1 << 20,
            ..ExploreLimits::default()
        };
        group.bench_with_input(BenchmarkId::new("reduced", n), &w, |b, w| {
            b.iter(|| {
                let g = Explorer::new(&w.form, limits).with_threads(1).graph();
                assert!(g.stats.closed);
                assert_eq!(g.state_count(), 1 << n);
            })
        });
        group.bench_with_input(BenchmarkId::new("plain", n), &w, |b, w| {
            b.iter(|| {
                let g = Explorer::new(&w.form, limits)
                    .with_threads(1)
                    .with_symmetry(SymmetryMode::Plain)
                    .graph();
                assert!(g.stats.closed);
                assert!(g.state_count() > 1 << n);
            })
        });
    }
    group.finish();
}

fn verdict_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/cache");
    group.sample_size(10);
    let w = workloads::subset_lattice(12);
    let budget = Budget {
        limits: ExploreLimits {
            max_states: 1 << 20,
            ..ExploreLimits::default()
        },
        force_method: Some(Method::BoundedExploration),
        ..Budget::default()
    };
    let request = AnalysisRequest::completability(w.form.clone()).with_budget(budget);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let r = analyze(&request);
            assert_eq!(r.verdict, Verdict::Holds);
        })
    });
    let cache = VerdictCache::new();
    analyze_with(&request, Some(&cache));
    group.bench_function("cached", |b| {
        b.iter(|| {
            let r = analyze_with(&request, Some(&cache));
            assert_eq!(r.verdict, Verdict::Holds);
        })
    });
    group.finish();
}

fn manager_safe_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/manager_safe_updates");
    group.sample_size(10);
    let oracle = Budget::with_limits(ExploreLimits {
        multiplicity_cap: Some(1),
        max_states: 20_000,
        ..ExploreLimits::small()
    });
    // The anti-pattern idar-server exists to avoid: a manager built per
    // call pays the cold sweep every time — its private cache and
    // memoized rules key die with it.
    group.bench_function("per_call_manager", |b| {
        b.iter(|| {
            let mgr = FormManager::new(
                idar_core::leave::example_3_12(),
                oracle.clone(),
                UnknownPolicy::Reject,
            );
            assert!(!mgr.safe_updates().is_empty());
        })
    });
    let warm_mgr = FormManager::new(
        idar_core::leave::example_3_12(),
        oracle.clone(),
        UnknownPolicy::Reject,
    );
    warm_mgr.safe_updates();
    group.bench_function("warm_cache", |b| {
        b.iter(|| {
            assert!(!warm_mgr.safe_updates().is_empty());
        })
    });
    // The server pattern: a persistent per-tenant session over the
    // process-wide shared cache. Even a *fresh* session is warm when a
    // sibling already analyzed the same rules — the cross-tenant path
    // the sessions tests pin at >= 2/3 hit rate.
    let shared = std::sync::Arc::new(VerdictCache::new());
    FormManager::new(
        idar_core::leave::example_3_12(),
        oracle.clone(),
        UnknownPolicy::Reject,
    )
    .with_cache(std::sync::Arc::clone(&shared))
    .safe_updates();
    group.bench_function("session_shared_cache", |b| {
        b.iter(|| {
            let mgr = FormManager::new(
                idar_core::leave::example_3_12(),
                oracle.clone(),
                UnknownPolicy::Reject,
            )
            .with_cache(std::sync::Arc::clone(&shared));
            assert!(!mgr.safe_updates().is_empty());
        })
    });
    group.finish();
}

criterion_group!(benches, symmetry_modes, verdict_cache, manager_safe_updates);
criterion_main!(benches);
