//! Scenario-corpus benches.
//!
//! * `scenarios/chain_depth/*` — completability on clean approval
//!   chains (`workloads::approval_chain`) as the chain deepens: the
//!   deletion-free cell, so the wall-time should scale with the state
//!   space (`2^depth` signature subsets under multiplicity cap 1), not
//!   blow up.
//! * `scenarios/named/*` — completability on the six named scenarios
//!   (rejection loops, SoD/BoD duties, delegation cycles): the shapes
//!   the differential suite pins, timed end-to-end through the solver.
//! * `scenarios/build/*` — pure builder + constraint-compilation cost
//!   for a recipe-sampled spec (no solving), the per-case overhead the
//!   fuzz harness pays.
//!
//! Verdict agreement with the corpus pins is asserted inside every
//! timed body, so a drift fails the bench run loudly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idar_bench::workloads;
use idar_gen::{named_scenarios, ScenarioAxis};
use idar_solver::{completability, CompletabilityOptions, ExploreLimits, Verdict};

fn scenario_opts() -> CompletabilityOptions {
    CompletabilityOptions::with_limits(ExploreLimits {
        max_states: 120_000,
        max_state_size: 64,
        max_depth: usize::MAX,
        multiplicity_cap: Some(1),
    })
}

fn chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenarios/chain_depth");
    group.sample_size(10);
    for depth in [4usize, 8, 12] {
        let w = workloads::approval_chain(depth, 2, 3);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &w, |b, w| {
            b.iter(|| {
                let r = completability(&w.form, &scenario_opts());
                assert_eq!(r.verdict, Verdict::Holds);
                assert_eq!(r.witness_run.unwrap().len(), depth + 1);
            })
        });
    }
    group.finish();
}

fn named(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenarios/named");
    group.sample_size(10);
    for n in named_scenarios() {
        let expected = if n.expected.completable {
            Verdict::Holds
        } else {
            Verdict::Fails
        };
        let name = n.scenario.name.clone();
        group.bench_with_input(BenchmarkId::from_parameter(&name), &n, |b, n| {
            b.iter(|| {
                let r = completability(&n.scenario.form, &scenario_opts());
                assert_eq!(r.verdict, expected, "{name}");
            })
        });
    }
    group.finish();
}

fn build(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenarios/build");
    group.sample_size(20);
    for axis in ScenarioAxis::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(axis.name()),
            &axis,
            |b, axis| {
                b.iter(|| {
                    let spec = axis.sample(17);
                    let s = spec.build("bench");
                    assert!(s.fragment.admits(&s.form));
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, chain_depth, named, build);
criterion_main!(benches);
