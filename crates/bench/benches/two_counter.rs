//! Theorem 4.1 benches — the undecidable cells of Table 1.
//!
//! * `micro_steps/*` — executing compiled machines through the guarded
//!   form micro-protocol; the cost per machine step grows with counter
//!   values (marking is linear in the counter), which is exactly the
//!   O(counter) overhead the construction's marking protocol predicts.
//! * `completability/*` — the bounded explorer discovering the halting
//!   run of a compiled machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idar_machines::library;
use idar_reductions::tcm_to_completability::reduce;
use idar_solver::{completability, CompletabilityOptions, ExploreLimits, Verdict};

fn micro_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_counter/micro_steps");
    group.sample_size(10);
    for n in [1u32, 2, 4, 8] {
        let machine = library::count_up_then_accept(n);
        let compiled = reduce(&machine);
        group.bench_with_input(BenchmarkId::new("count_up", n), &compiled, |b, tcm| {
            b.iter(|| {
                let trace = tcm.trace((n + 2) as usize, 50_000);
                assert_eq!(trace.last().map(|c| c.c1), Some(n as u64));
            })
        });
    }
    for n in [1u32, 2, 4] {
        let machine = library::transfer_c1_to_c2(n);
        let compiled = reduce(&machine);
        group.bench_with_input(BenchmarkId::new("transfer", n), &compiled, |b, tcm| {
            b.iter(|| {
                let trace = tcm.trace((2 * n + 3) as usize, 50_000);
                assert_eq!(trace.last().map(|c| c.c2), Some(n as u64));
            })
        });
    }
    group.finish();
}

fn tcm_completability(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_counter/completability");
    group.sample_size(10);
    for n in [0u32, 1, 2] {
        let machine = library::count_up_then_accept(n);
        let compiled = reduce(&machine);
        group.bench_with_input(BenchmarkId::new("count_up", n), &compiled, |b, tcm| {
            let opts = CompletabilityOptions::with_limits(ExploreLimits {
                max_states: 2_000_000,
                max_state_size: 256,
                ..ExploreLimits::default()
            });
            b.iter(|| {
                let r = completability(&tcm.form, &opts);
                assert_eq!(r.verdict, Verdict::Holds);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, micro_steps, tcm_completability);
criterion_main!(benches);
