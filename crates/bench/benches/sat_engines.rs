//! SAT-engine benches: CDCL vs DPLL on the `idar_gen::cnf` families.
//!
//! * `chain/*` — implication chains: pure unit propagation; the workload
//!   that exposed the original quadratic DPLL rescan (53.6 s at 200k
//!   clauses) and the ISSUE 3 acceptance bound (CDCL < 100 ms there).
//! * `pigeonhole/*` — UNSAT with exponentially long resolution proofs:
//!   conflict analysis and clause learning dominate.
//! * `random3cnf/*` — seeded 3-CNF at the ~4.2 phase-transition ratio
//!   (DPLL rows stop at 30 variables; without learning it falls off a
//!   cliff shortly after).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idar_gen::cnf;
use idar_logic::Engine;

fn chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_engines/chain");
    group.sample_size(10);
    for n in [10_000usize, 50_000, 200_000] {
        let instance = cnf::implication_chain(n);
        for engine in [Engine::Cdcl, Engine::Dpll] {
            group.bench_with_input(
                BenchmarkId::new(engine.to_string(), n),
                &instance,
                |b, instance| {
                    b.iter(|| {
                        assert!(engine.solve(criterion::black_box(instance)).is_some());
                    })
                },
            );
        }
    }
    group.finish();
}

fn pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_engines/pigeonhole");
    group.sample_size(10);
    for holes in [4usize, 5, 6] {
        let instance = cnf::pigeonhole(holes);
        for engine in [Engine::Cdcl, Engine::Dpll] {
            // DPLL explores the full factorial tree; keep it to the sizes
            // that stay in milliseconds.
            if engine == Engine::Dpll && holes > 5 {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(engine.to_string(), holes),
                &instance,
                |b, instance| {
                    b.iter(|| {
                        assert!(engine.solve(criterion::black_box(instance)).is_none());
                    })
                },
            );
        }
    }
    group.finish();
}

fn random3cnf(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_engines/random3cnf");
    group.sample_size(10);
    for vars in [20usize, 30, 60] {
        let clauses = vars * 21 / 5; // ratio 4.2
        let family: Vec<_> = (0..3u64)
            .map(|s| cnf::random_3cnf(s * 31 + 7, vars, clauses))
            .collect();
        for engine in [Engine::Cdcl, Engine::Dpll] {
            if engine == Engine::Dpll && vars > 30 {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(engine.to_string(), vars),
                &family,
                |b, family| {
                    b.iter(|| {
                        for instance in family {
                            criterion::black_box(engine.solve(criterion::black_box(instance)));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, chain, pigeonhole, random3cnf);
criterion_main!(benches);
