//! Semi-soundness benches — Table 1, semi-soundness column.
//!
//! * `conp_sat/*` — row `F(A+, φ+, 1)` (coNP-complete, Thm 5.6/Cor 5.7):
//!   exact depth-1 decision on SAT-derived families.
//! * `qsat_k1/*` — row `F(A+, φ−, 1)` (Π^P_2-complete, Thm 5.3 at k = 1).
//! * `depth1_reset/*` — rows `F(A−, φ±, 1)` (PSPACE-complete, Cor 4.7):
//!   reset/build forms derived from completability instances.
//! * `positive_deep/*` — rows `F(A+, φ+, k/∞)` (coNP-hard, upper open):
//!   bounded reachable enumeration with the exact P oracle per state.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idar_bench::workloads;
use idar_solver::semisound::{semisoundness, SemisoundnessOptions};
use idar_solver::{ExploreLimits, Verdict};

fn expected(v: bool) -> Verdict {
    if v {
        Verdict::Holds
    } else {
        Verdict::Fails
    }
}

fn conp_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("semisoundness/conp_sat");
    group.sample_size(10);
    for vars in [3usize, 4, 5, 6] {
        let family: Vec<_> = (0..3u64)
            .map(|seed| workloads::conp_sat(seed, vars, vars * 3))
            .collect();
        group.bench_with_input(BenchmarkId::new("v", vars), &family, |b, family| {
            b.iter(|| {
                for w in family {
                    let r = semisoundness(&w.form, &SemisoundnessOptions::default());
                    assert_eq!(r.verdict, expected(w.expected.unwrap()), "{}", w.name);
                }
            })
        });
    }
    group.finish();
}

fn qsat_k1(c: &mut Criterion) {
    let mut group = c.benchmark_group("semisoundness/qsat_k1");
    group.sample_size(10);
    for n in [1usize, 2, 3] {
        let family: Vec<_> = (0..3u64)
            .map(|seed| workloads::qsat_semisound(seed, 1, n).0)
            .collect();
        group.bench_with_input(BenchmarkId::new("n", n), &family, |b, family| {
            b.iter(|| {
                for w in family {
                    let r = semisoundness(&w.form, &SemisoundnessOptions::default());
                    assert_eq!(r.verdict, expected(w.expected.unwrap()), "{}", w.name);
                }
            })
        });
    }
    group.finish();
}

fn depth1_reset(c: &mut Criterion) {
    let mut group = c.benchmark_group("semisoundness/depth1_reset");
    group.sample_size(10);
    for vars in [3usize, 4, 5] {
        let family: Vec<_> = (0..2u64)
            .map(|seed| workloads::depth1_reset_build(seed, vars, vars * 3))
            .collect();
        group.bench_with_input(BenchmarkId::new("v", vars), &family, |b, family| {
            b.iter(|| {
                for w in family {
                    let r = semisoundness(&w.form, &SemisoundnessOptions::default());
                    assert_eq!(r.verdict, expected(w.expected.unwrap()), "{}", w.name);
                }
            })
        });
    }
    group.finish();
}

fn positive_deep(c: &mut Criterion) {
    let mut group = c.benchmark_group("semisoundness/positive_deep");
    group.sample_size(10);
    for (depth, fanout) in [(2usize, 2usize), (3, 2)] {
        let w = workloads::positive_tree(depth, fanout);
        let opts = SemisoundnessOptions {
            limits: ExploreLimits {
                multiplicity_cap: Some(1),
                max_states: 5_000,
                ..ExploreLimits::small()
            },
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("tree", format!("d{depth}f{fanout}")),
            &w,
            |b, w| {
                b.iter(|| {
                    let r = semisoundness(&w.form, &opts);
                    // Bounded enumeration: must never claim Fails here.
                    assert_ne!(r.verdict, Verdict::Fails);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, conp_sat, qsat_k1, depth1_reset, positive_deep);
criterion_main!(benches);
