//! Parallel frontier exploration benches.
//!
//! * `explore/seq_vs_par/*` — the pooled parallel engine (persistent
//!   worker pool + fingerprint-sharded store) against the sequential
//!   engine on `subset_lattice(n)`: a closed 2ⁿ-state space with
//!   combinatorially wide frontiers (layer `d` holds `C(n, d)` states).
//!   `n = 17` is ≥ 100k states; on a multi-core host the parallel row
//!   should beat the sequential row by roughly the core count (workers
//!   are spawned once per run and intern successors concurrently — there
//!   is no per-layer spawn/join or sequential merge left to amortise).
//! * `batch/*` — the [`BatchAnalyzer`] sweep over a mixed family pool,
//!   1 thread vs all threads (the batch splits its thread budget, so the
//!   all-threads row no longer oversubscribes inner explorers).
//!
//! Both benches assert verdict/state-set agreement inside the timed body,
//! so a disagreement between engines fails the bench run loudly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idar_bench::workloads;
use idar_solver::batch::{BatchAnalyzer, BatchItem};
use idar_solver::{default_threads, ExploreLimits, Explorer};

fn explore_seq_vs_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/seq_vs_par");
    group.sample_size(5);
    let threads = default_threads().max(2);
    for n in [14usize, 17] {
        let w = workloads::subset_lattice(n);
        let limits = ExploreLimits {
            max_states: 1 << 20,
            ..ExploreLimits::default()
        };
        let expected_states = 1usize << n;
        group.bench_with_input(BenchmarkId::new("seq", n), &w, |b, w| {
            b.iter(|| {
                let g = Explorer::new(&w.form, limits).with_threads(1).graph();
                assert!(g.stats.closed);
                assert_eq!(g.state_count(), expected_states);
            })
        });
        group.bench_with_input(BenchmarkId::new(format!("par{threads}"), n), &w, |b, w| {
            b.iter(|| {
                let g = Explorer::new(&w.form, limits).with_threads(threads).graph();
                assert!(g.stats.closed);
                assert_eq!(g.state_count(), expected_states);
            })
        });
    }
    group.finish();
}

fn batch_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch/table1_families");
    group.sample_size(5);

    let items = || {
        let mut v = Vec::new();
        for seed in 0..6 {
            v.push(workloads::np_sat(seed, 5, 15));
        }
        for n in [2usize, 3] {
            v.push(workloads::depth1_philosophers(n));
        }
        v.push(workloads::subset_lattice(12));
        v.into_iter()
            .map(|w| BatchItem::new(w.name, w.form))
            .collect::<Vec<_>>()
    };

    for threads in [1usize, default_threads().max(2)] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let reports = BatchAnalyzer::new()
                        .with_limits(ExploreLimits::default())
                        .with_threads(threads)
                        .run(items());
                    assert_eq!(reports.len(), 9);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, explore_seq_vs_par, batch_pool);
criterion_main!(benches);
