//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `depth1_compiled_vs_generic` — the depth-1 fast path (Lemma 4.3
//!   canonical bitset states + compiled guards) against the generic
//!   explorer (raw instances, tree-walking evaluation, isomorphism-code
//!   deduplication) on identical forms. The gap is the price of ignoring
//!   Lemma 4.3.
//! * `np_cap_tightness` — the Thm 5.2 multiplicity cap versus a 4×
//!   looser cap: the looser the cap, the bigger the explored space, with
//!   identical verdicts. Measures the value of the occurrence-counting
//!   bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idar_bench::workloads;
use idar_solver::{completability, CompletabilityOptions, ExploreLimits, Method, Verdict};

fn depth1_compiled_vs_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/depth1_compiled_vs_generic");
    group.sample_size(10);
    for n in [2usize, 3] {
        let w = workloads::depth1_philosophers(n);
        group.bench_with_input(BenchmarkId::new("compiled", n), &w, |b, w| {
            b.iter(|| {
                let r = completability(
                    &w.form,
                    &CompletabilityOptions {
                        limits: ExploreLimits::default(),
                        force_method: Some(Method::Depth1Canonical),
                        ..Default::default()
                    },
                );
                assert_eq!(r.verdict, Verdict::Holds);
            })
        });
        group.bench_with_input(BenchmarkId::new("generic", n), &w, |b, w| {
            b.iter(|| {
                let r = completability(
                    &w.form,
                    &CompletabilityOptions {
                        limits: ExploreLimits {
                            // The canonical space is multiplicity-blind;
                            // cap 1 makes the raw space match it.
                            multiplicity_cap: Some(1),
                            max_states: 2_000_000,
                            ..ExploreLimits::default()
                        },
                        force_method: Some(Method::BoundedExploration),
                        ..Default::default()
                    },
                );
                assert_eq!(r.verdict, Verdict::Holds);
            })
        });
    }
    group.finish();
}

fn np_cap_tightness(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/np_cap_tightness");
    group.sample_size(10);
    let w = workloads::np_sat(1, 6, 18);
    let tight = idar_solver::np::theorem_5_2_bound(&w.form);
    for (name, cap) in [("theorem_bound", tight), ("loose_4x", tight * 4)] {
        group.bench_with_input(BenchmarkId::new(name, cap), &w, |b, w| {
            b.iter(|| {
                let r = completability(
                    &w.form,
                    &CompletabilityOptions {
                        limits: ExploreLimits {
                            multiplicity_cap: Some(cap),
                            max_states: 2_000_000,
                            ..ExploreLimits::default()
                        },
                        force_method: Some(Method::BoundedExploration),
                        ..Default::default()
                    },
                );
                // Identical verdict regardless of cap width.
                let expected = if w.expected.unwrap() {
                    Verdict::Holds
                } else {
                    Verdict::Unknown // loose caps de-close the search
                };
                assert!(r.verdict == expected || r.verdict == Verdict::Fails);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, depth1_compiled_vs_generic, np_cap_tightness);
criterion_main!(benches);
