//! Completability benches — Table 1, completability column.
//!
//! * `positive_saturation/*` — rows `F(A+, φ+, ·)`: the Thm 5.5 algorithm
//!   must scale polynomially in form size.
//! * `np_sat/*` — rows `F(A+, φ−, 1/k)`: the Thm 5.2 procedure on SAT
//!   families (NP-complete; exponential worst case expected).
//! * `depth1_deadlock/*` — rows `F(A−, φ±, 1)`: the Lemma 4.3 canonical
//!   search on Thm 4.6 deadlock families (PSPACE-complete; the state space
//!   doubles per philosopher).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idar_bench::workloads;
use idar_solver::{completability, CompletabilityOptions, Verdict};

fn positive_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("completability/positive_saturation");
    for n in [8usize, 16, 32, 64, 128] {
        let w = workloads::positive_chain(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &w, |b, w| {
            b.iter(|| {
                let r = completability(&w.form, &CompletabilityOptions::default());
                assert_eq!(r.verdict, Verdict::Holds);
            })
        });
    }
    for (depth, fanout) in [(2usize, 2usize), (3, 2), (3, 3), (4, 2)] {
        let w = workloads::positive_tree(depth, fanout);
        group.bench_with_input(
            BenchmarkId::new("tree", format!("d{depth}f{fanout}")),
            &w,
            |b, w| {
                b.iter(|| {
                    let r = completability(&w.form, &CompletabilityOptions::default());
                    assert_eq!(r.verdict, Verdict::Holds);
                })
            },
        );
    }
    group.finish();
}

fn np_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("completability/np_sat");
    group.sample_size(10);
    for vars in [4usize, 6, 8, 10] {
        let clauses = vars * 3;
        let family: Vec<_> = (0..3u64)
            .map(|seed| workloads::np_sat(seed, vars, clauses))
            .collect();
        group.bench_with_input(BenchmarkId::new("v", vars), &family, |b, family| {
            b.iter(|| {
                for w in family {
                    let r = completability(&w.form, &CompletabilityOptions::default());
                    let expected = if w.expected.unwrap() {
                        Verdict::Holds
                    } else {
                        Verdict::Fails
                    };
                    assert_eq!(r.verdict, expected, "{}", w.name);
                }
            })
        });
    }
    group.finish();
}

fn depth1_deadlock(c: &mut Criterion) {
    let mut group = c.benchmark_group("completability/depth1_deadlock");
    group.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        let w = workloads::depth1_philosophers(n);
        group.bench_with_input(BenchmarkId::new("philosophers", n), &w, |b, w| {
            b.iter(|| {
                let r = completability(&w.form, &CompletabilityOptions::default());
                assert_eq!(r.verdict, Verdict::Holds);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, positive_saturation, np_sat, depth1_deadlock);
criterion_main!(benches);
