//! Satisfiability benches — Corollary 4.5.
//!
//! * `tableau_random/*` — random path formulas at growing size (the
//!   NP-side: depth bounded by formula nesting).
//! * `sat_encoding/*` — the Cor 4.5 SAT→satisfiability encoding vs the
//!   DPLL baseline on the same CNFs (reduction overhead is the point).
//! * `qbf_encoding/*` — the Cor 4.5 QSAT→satisfiability nested encoding
//!   (the PSPACE side: alternation count is the hard axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idar_bench::workloads;
use idar_logic::gen::{random_3cnf, Rng, XorShift};
use idar_logic::qbf::{Qbf, Quantifier};
use idar_logic::Var;
use idar_solver::satisfiability::{satisfiable, SatOptions, SatResult};

fn tableau_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfiability/tableau_random");
    for size in [5usize, 10, 20, 40] {
        let family: Vec<_> = (0..5u64)
            .map(|seed| workloads::random_formula(seed, 4, size))
            .collect();
        group.bench_with_input(BenchmarkId::new("size", size), &family, |b, family| {
            b.iter(|| {
                for f in family {
                    let r = satisfiable(f, &SatOptions::default());
                    assert_ne!(r, SatResult::BudgetExhausted);
                }
            })
        });
    }
    group.finish();
}

fn sat_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfiability/sat_encoding");
    group.sample_size(10);
    for vars in [4usize, 5, 6] {
        let cnfs: Vec<_> = (0..3u64).map(|s| random_3cnf(s, vars, vars * 3)).collect();
        group.bench_with_input(BenchmarkId::new("tableau_v", vars), &cnfs, |b, cnfs| {
            b.iter(|| {
                for cnf in cnfs {
                    let f = idar_reductions::sat_to_satisfiability::reduce(cnf);
                    let r = satisfiable(&f, &SatOptions::default());
                    assert_eq!(r.is_sat(), idar_logic::sat_solve(cnf).is_some());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("dpll_v", vars), &cnfs, |b, cnfs| {
            b.iter(|| {
                for cnf in cnfs {
                    criterion::black_box(idar_logic::sat_solve(cnf));
                }
            })
        });
    }
    group.finish();
}

fn qbf_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfiability/qbf_encoding");
    group.sample_size(10);
    for nvars in [2usize, 3] {
        let mut rng = XorShift::new(77);
        let family: Vec<Qbf> = (0..3)
            .map(|i| {
                let blocks: Vec<(Quantifier, Vec<Var>)> = (0..nvars)
                    .map(|v| {
                        let q = if rng.bool() {
                            Quantifier::Exists
                        } else {
                            Quantifier::ForAll
                        };
                        (q, vec![Var(v as u32)])
                    })
                    .collect();
                let matrix = idar_logic::gen::random_prop(1000 + i, nvars, 6);
                Qbf::new(blocks, matrix)
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("alternations", nvars),
            &family,
            |b, family| {
                b.iter(|| {
                    for qbf in family {
                        let f = idar_reductions::qsat_to_satisfiability::reduce(qbf);
                        let r = satisfiable(&f, &SatOptions::default());
                        assert_eq!(r.is_sat(), qbf.eval());
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, tableau_random, sat_encoding, qbf_encoding);
criterion_main!(benches);
