//! # idar-bench
//!
//! Benchmark workloads and the experiment harness that regenerates every
//! table and figure of the paper (see `DESIGN.md` §4 for the experiment
//! index and `EXPERIMENTS.md` for recorded results).
//!
//! The paper is a theory paper: its single table (Table 1) is a complexity
//! matrix and its three figures are worked examples. Reproduction
//! therefore means (a) *verdict agreement* between the guarded-form
//! solvers and independent baselines on reduction-generated families, and
//! (b) *scaling shapes* consistent with each cell's complexity class —
//! which is exactly what [`workloads`] generates and the Criterion benches
//! plus the `reproduce` binary measure.

#![forbid(unsafe_code)]

pub mod json;
pub mod load;
pub mod workloads;

use idar_core::GuardedForm;

/// A named, sized benchmark workload: a guarded form plus the verdict the
/// baseline solver expects (when one exists).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload family and parameters, e.g. `np_sat/v6c18/seed3`.
    pub name: String,
    /// The compiled guarded form.
    pub form: GuardedForm,
    /// The baseline answer for the property under test, if known:
    /// completability or semi-soundness depending on the family.
    pub expected: Option<bool>,
}
