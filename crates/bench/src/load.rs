//! `idar-load`: a deterministic, seeded load generator for the
//! `idar-server` service.
//!
//! The generator compiles a *schedule* — which users exist, which tenant
//! each belongs to (zipf-skewed so a few tenants dominate, as real
//! multi-tenant traffic does), which forms each tenant runs, and the
//! per-user operation sequence — as a pure function of
//! [`LoadConfig::seed`]. Execution then drives the schedule over plain
//! `TcpStream`s from a small pool of client threads.
//!
//! Two properties make runs comparable:
//!
//! * **verdict determinism** — each user's operations hit only its own
//!   session (or the stateless analyze route), so the verdict sequence
//!   per `(user, seq)` is independent of interleaving. Two runs with the
//!   same config against fresh servers must produce identical
//!   [`LoadReport::verdicts`]; the smoke mode asserts exactly that.
//!   Cache provenance (`X-Cache`) is *excluded* — it genuinely depends
//!   on arrival order.
//! * **shed transparency** — a 429 is retried (bounded, honouring a
//!   capped `Retry-After`) without advancing the logical sequence, so
//!   shedding affects latency, never the verdict vector.

use idar_core::serialize::to_ron;
use idar_gen::scenario::ScenarioRecipe;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// The operation mix a run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficMix {
    /// Form-filling sessions: open → (safe-updates → vet/submit)* → close.
    /// Exercises per-tenant sessions and the manager's incremental
    /// vetting path.
    Interactive,
    /// Stateless `POST /v1/analyze` calls over a small form pool.
    /// Exercises the shared verdict cache across tenants.
    Analysis,
    /// Long-lived sessions under a burst of sequential edits: open →
    /// (safe-updates → submit)* → close, with every middle operation an
    /// actual state change. Exercises the retained session graph — on a
    /// server whose budget keeps sessions enabled, most of these
    /// operations should be answered warm (graph hits or frontier
    /// extensions rather than cold solves).
    EditBurst,
}

impl TrafficMix {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TrafficMix::Interactive => "interactive",
            TrafficMix::Analysis => "analysis",
            TrafficMix::EditBurst => "edit-burst",
        }
    }
}

/// A load run specification. Everything observable about the run (except
/// timing and cache provenance) is a pure function of this struct.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Master seed; schedules are a pure function of it.
    pub seed: u64,
    /// Tenant count; tenant `i` is named `t<i>`.
    pub tenants: usize,
    /// Total simulated users (each runs one session / request stream).
    pub users: usize,
    /// Operations per user (the logical sequence length).
    pub requests_per_user: usize,
    /// Which operation mix to drive.
    pub mix: TrafficMix,
    /// Zipf skew exponent for user→tenant assignment (0 = uniform).
    pub zipf_s: f64,
    /// Client driver threads.
    pub clients: usize,
    /// 429 retry budget per logical request.
    pub max_retries: u32,
}

impl LoadConfig {
    /// A small config suitable for smoke tests against `addr`.
    pub fn smoke(addr: SocketAddr, seed: u64) -> LoadConfig {
        LoadConfig {
            addr,
            seed,
            tenants: 2,
            users: 6,
            requests_per_user: 8,
            mix: TrafficMix::Interactive,
            zipf_s: 1.0,
            clients: 3,
            max_retries: 8,
        }
    }
}

/// One observed response.
#[derive(Debug, Clone)]
pub struct Sample {
    /// User index.
    pub user: usize,
    /// Logical sequence number within the user's stream.
    pub seq: usize,
    /// Final HTTP status (after retries).
    pub status: u16,
    /// The `X-Verdict` header, or `-` when absent.
    pub verdict: String,
    /// Wall latency of the final (non-429) attempt.
    pub latency: Duration,
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Logical requests completed (one per schedule slot).
    pub sent: u64,
    /// Requests whose final status was 2xx.
    pub ok: u64,
    /// 429 responses absorbed by retries (not logical failures).
    pub retried_429: u64,
    /// Requests that ended in a transport error or a non-2xx/429 status.
    pub errors: u64,
    /// Statuses outside {2xx, 429} that were observed, with counts.
    pub bad_statuses: Vec<(u16, u64)>,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Sorted final-attempt latencies.
    pub latencies: Vec<Duration>,
    /// `(user, seq, verdict)` for every logical request, sorted — the
    /// cross-run determinism vector.
    pub verdicts: Vec<(usize, usize, String)>,
}

impl LoadReport {
    /// Logical requests per second.
    pub fn throughput_rps(&self) -> f64 {
        self.sent as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Latency percentile in milliseconds (`p` in 0..=100).
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * (self.latencies.len() - 1) as f64).round() as usize;
        self.latencies[rank.min(self.latencies.len() - 1)].as_secs_f64() * 1e3
    }
}

/// splitmix64 — the same generator the scenario samplers use; good
/// enough to decorrelate per-user streams from one master seed.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf-assign each of `users` to one of `tenants` ranks with exponent
/// `s` (rank 0 heaviest). Pure function of the rng state.
fn zipf_assign(rng: &mut Rng, users: usize, tenants: usize, s: f64) -> Vec<usize> {
    let weights: Vec<f64> = (0..tenants.max(1))
        .map(|i| 1.0 / ((i + 1) as f64).powf(s))
        .collect();
    let total: f64 = weights.iter().sum();
    (0..users)
        .map(|_| {
            let mut x = rng.unit() * total;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return i;
                }
                x -= w;
            }
            weights.len() - 1
        })
        .collect()
}

/// The form pool every run draws from: two lightweight chains. Tenants
/// share pool entries (`tenant % pool`), so tenants with the same rules
/// exercise the cross-tenant cache-sharing path by construction.
pub fn form_pool(seed: u64) -> Vec<String> {
    let recipe = ScenarioRecipe::lightweight();
    [seed ^ 0x11, seed ^ 0x22]
        .iter()
        .map(|s| to_ron(&recipe.sample(*s).build("load").form))
        .collect()
}

/// A minimal HTTP/1.1 client exchange: one request, read to EOF
/// (the server always closes), return `(status, x-verdict, retry-after,
/// body)`.
fn exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    tenant: Option<&str>,
    body: &str,
) -> std::io::Result<(u16, String, Option<u64>, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let tenant_header = match tenant {
        Some(t) => format!("X-Tenant: {t}\r\n"),
        None => String::new(),
    };
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: idar\r\n{tenant_header}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    // A refusing server (429 at admission) may close its read side while
    // we are still writing; the refusal is nevertheless on the wire, so a
    // write error must not abort the exchange — read whatever came back.
    let _ = stream.write_all(request.as_bytes());
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let mut head_and_body = text.splitn(2, "\r\n\r\n");
    let head = head_and_body.next().unwrap_or("");
    let resp_body = head_and_body.next().unwrap_or("").to_string();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("bad status line"))?;
    let mut verdict = String::from("-");
    let mut retry_after = None;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            match k.trim().to_ascii_lowercase().as_str() {
                "x-verdict" => verdict = v.trim().to_string(),
                "retry-after" => retry_after = v.trim().parse().ok(),
                _ => {}
            }
        }
    }
    Ok((status, verdict, retry_after, resp_body))
}

/// Pull the quoted strings out of a `{"safe":[...]}` body — the update
/// tokens the server hands out, treated as opaque by the client.
fn parse_safe_tokens(body: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut rest = body;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        tokens.push(rest[..end].to_string());
        rest = &rest[end + 1..];
    }
    tokens.retain(|t| t.starts_with("add ") || t.starts_with("del "));
    tokens
}

/// Outcome of one logical request after retries.
struct Attempted {
    status: u16,
    verdict: String,
    body: String,
    retried: u64,
    failed_io: bool,
    latency: Duration,
}

/// Issue one logical request: retry 429s (capped backoff, preserving the
/// logical sequence) until `max_retries` is spent.
fn attempt(
    cfg: &LoadConfig,
    method: &str,
    path: &str,
    tenant: Option<&str>,
    body: &str,
) -> Attempted {
    let mut retried = 0;
    loop {
        let t0 = Instant::now();
        match exchange(cfg.addr, method, path, tenant, body) {
            Ok((429, _, retry_after, _)) if retried < cfg.max_retries as u64 => {
                retried += 1;
                // Honour Retry-After but cap it: smoke runs must not
                // stall for the production-sized hint.
                let hint = Duration::from_secs(retry_after.unwrap_or(0));
                std::thread::sleep(hint.min(Duration::from_millis(25)));
            }
            Ok((status, verdict, _, resp_body)) => {
                return Attempted {
                    status,
                    verdict,
                    body: resp_body,
                    retried,
                    failed_io: false,
                    latency: t0.elapsed(),
                }
            }
            Err(_) => {
                return Attempted {
                    status: 0,
                    verdict: "io-error".into(),
                    body: String::new(),
                    retried,
                    failed_io: true,
                    latency: t0.elapsed(),
                }
            }
        }
    }
}

/// Per-user state threaded through the schedule.
struct UserState {
    tenant: String,
    form_ron: String,
    rng: Rng,
    session: Option<u64>,
}

/// Drive one user's logical request `seq`, returning the sample and the
/// number of 429s absorbed along the way.
fn drive_op(cfg: &LoadConfig, user: usize, seq: usize, st: &mut UserState) -> (Sample, u64) {
    let last = cfg.requests_per_user - 1;
    let a = match (cfg.mix, seq) {
        (TrafficMix::Analysis, _) => {
            let kind = if st.rng.below(4) == 0 {
                "semisoundness"
            } else {
                "completability"
            };
            attempt(
                cfg,
                "POST",
                &format!("/v1/analyze?kind={kind}"),
                None,
                &st.form_ron.clone(),
            )
        }
        (TrafficMix::Interactive | TrafficMix::EditBurst, 0) => {
            let a = attempt(
                cfg,
                "POST",
                "/v1/session",
                Some(&st.tenant),
                &st.form_ron.clone(),
            );
            if a.status == 200 {
                st.session = extract_session_id(&a.body);
            }
            a
        }
        (TrafficMix::Interactive | TrafficMix::EditBurst, s) if s == last => {
            let id = st.session.unwrap_or(0);
            attempt(
                cfg,
                "POST",
                &format!("/v1/session/{id}/close"),
                Some(&st.tenant),
                "",
            )
        }
        (TrafficMix::Interactive | TrafficMix::EditBurst, _) => {
            let id = st.session.unwrap_or(0);
            // Ask what is safe, then act on a deterministic pick:
            // interactive traffic vets about a third of the time,
            // edit-burst always submits so the session state advances on
            // every middle operation.
            let safe = attempt(
                cfg,
                "GET",
                &format!("/v1/session/{id}/safe_updates"),
                Some(&st.tenant),
                "",
            );
            let tokens = parse_safe_tokens(&safe.body);
            if safe.status != 200 || tokens.is_empty() {
                safe
            } else {
                let pick = tokens[st.rng.below(tokens.len())].clone();
                let verb = if cfg.mix == TrafficMix::Interactive && st.rng.below(3) == 0 {
                    "vet"
                } else {
                    "submit"
                };
                attempt(
                    cfg,
                    "POST",
                    &format!("/v1/session/{id}/{verb}"),
                    Some(&st.tenant),
                    &pick,
                )
            }
        }
    };
    (
        Sample {
            user,
            seq,
            status: a.status,
            verdict: if a.failed_io {
                "io-error".into()
            } else {
                a.verdict.clone()
            },
            latency: a.latency,
        },
        a.retried,
    )
}

/// `{"session":N}` → N.
fn extract_session_id(body: &str) -> Option<u64> {
    let digits: String = body
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Execute the run: build the deterministic schedule, drive it from
/// `cfg.clients` threads (users are partitioned round-robin across
/// clients; each user's stream stays in order), and aggregate.
pub fn run(cfg: &LoadConfig) -> LoadReport {
    let mut master = Rng::new(cfg.seed);
    let assignment = zipf_assign(&mut master, cfg.users, cfg.tenants, cfg.zipf_s);
    let pool = form_pool(cfg.seed);
    let users: Vec<UserState> = (0..cfg.users)
        .map(|u| {
            let tenant_idx = assignment[u];
            UserState {
                tenant: format!("t{tenant_idx}"),
                form_ron: pool[tenant_idx % pool.len()].clone(),
                rng: Rng::new(cfg.seed ^ ((u as u64 + 1) * 0x9E37_79B9)),
                session: None,
            }
        })
        .collect();

    let t0 = Instant::now();
    let clients = cfg.clients.max(1);
    let mut per_client: Vec<Vec<(usize, UserState)>> = (0..clients).map(|_| Vec::new()).collect();
    for (u, st) in users.into_iter().enumerate() {
        per_client[u % clients].push((u, st));
    }
    let mut all_samples: Vec<Sample> = Vec::new();
    let mut retried_total = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = per_client
            .into_iter()
            .map(|mut batch| {
                scope.spawn(move || {
                    let mut samples = Vec::new();
                    let mut retried = 0u64;
                    for (u, st) in batch.iter_mut() {
                        for seq in 0..cfg.requests_per_user {
                            let (s, r) = drive_op(cfg, *u, seq, st);
                            retried += r;
                            samples.push(s);
                        }
                    }
                    (samples, retried)
                })
            })
            .collect();
        for h in handles {
            let (samples, retried) = h.join().expect("client thread panicked");
            all_samples.extend(samples);
            retried_total += retried;
        }
    });
    let wall = t0.elapsed();

    let mut latencies: Vec<Duration> = all_samples.iter().map(|s| s.latency).collect();
    latencies.sort();
    let mut verdicts: Vec<(usize, usize, String)> = all_samples
        .iter()
        .map(|s| (s.user, s.seq, s.verdict.clone()))
        .collect();
    verdicts.sort();
    let mut bad: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
    let mut ok = 0u64;
    let mut errors = 0u64;
    for s in &all_samples {
        if (200..300).contains(&s.status) {
            ok += 1;
        } else if s.status != 429 {
            errors += 1;
            *bad.entry(s.status).or_insert(0) += 1;
        }
    }
    LoadReport {
        sent: all_samples.len() as u64,
        ok,
        retried_429: retried_total,
        errors,
        bad_statuses: bad.into_iter().collect(),
        wall,
        latencies,
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_skews_toward_rank_zero() {
        let mut rng = Rng::new(7);
        let assign = zipf_assign(&mut rng, 1000, 4, 1.2);
        let count0 = assign.iter().filter(|&&t| t == 0).count();
        let count3 = assign.iter().filter(|&&t| t == 3).count();
        assert!(
            count0 > count3 * 2,
            "rank 0 got {count0}, rank 3 got {count3}"
        );
    }

    #[test]
    fn schedules_are_pure_functions_of_the_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        assert_eq!(
            zipf_assign(&mut a, 50, 3, 1.0),
            zipf_assign(&mut b, 50, 3, 1.0)
        );
        assert_eq!(form_pool(42), form_pool(42));
        assert_ne!(form_pool(42)[0], form_pool(42)[1]);
    }

    #[test]
    fn safe_token_parser_ignores_non_update_strings() {
        let tokens = parse_safe_tokens("{\"safe\":[\"add 0 chain/sig\",\"del 3\"]}");
        assert_eq!(tokens, vec!["add 0 chain/sig", "del 3"]);
        assert!(parse_safe_tokens("{\"error\":\"nope\"}").is_empty());
    }
}
