//! Parameterised workload families, one per Table 1 cell (see DESIGN.md §4).
//!
//! Every generator is deterministic in its seed so benchmark runs are
//! reproducible. Form *assembly* lives in [`idar_gen::builders`] — the
//! construction path shared with the differential fuzz harness — and this
//! module only attaches names and expected verdicts.

use crate::Workload;
use idar_core::{AccessRules, Formula, GuardedForm, Instance, SchemaBuilder, SchemaNodeId};
use idar_logic::gen::{random_3cnf, random_qsat2k, Rng, XorShift};
use idar_logic::qbf::Qbf;
use idar_machines::TwoCounterMachine;
use std::sync::Arc;

/// `F(A+, φ+, 1)` — a dependency chain: label `i` requires label `i−1`.
/// Completable, decided by Thm 5.5 saturation in O(n²) guard checks.
pub fn positive_chain(n: usize) -> Workload {
    Workload {
        name: format!("positive_chain/n{n}"),
        form: idar_gen::builders::positive_chain(n),
        expected: Some(true),
    }
}

/// `F(A+, φ+, k)` — a complete `fanout`-ary tree of depth `depth`; every
/// node requires its parent (structurally) and its left sibling subtree.
pub fn positive_tree(depth: usize, fanout: usize) -> Workload {
    let mut b = SchemaBuilder::new();
    fn grow(b: &mut SchemaBuilder, parent: SchemaNodeId, depth: usize, fanout: usize) {
        if depth == 0 {
            return;
        }
        for i in 0..fanout {
            let c = b.child(parent, &format!("n{depth}_{i}")).unwrap();
            grow(b, c, depth - 1, fanout);
        }
    }
    grow(&mut b, SchemaNodeId::ROOT, depth, fanout);
    let schema = Arc::new(b.build());
    let rules = AccessRules::with_default(&schema, Formula::True);
    // Completion: the leftmost root-to-leaf path exists.
    let mut path = String::new();
    for d in (1..=depth).rev() {
        if !path.is_empty() {
            path.push('/');
        }
        path.push_str(&format!("n{d}_0"));
    }
    let completion = Formula::path(&path);
    let initial = Instance::empty(schema.clone());
    Workload {
        name: format!("positive_tree/d{depth}f{fanout}"),
        form: GuardedForm::new(schema, rules, initial, completion),
        expected: Some(true),
    }
}

/// `F(A−, φ+, 1)` — the full subset lattice over `n` labels: every label
/// freely addable (while absent) and deletable, completion = all labels
/// present.
///
/// The reachable space is exactly the 2ⁿ subsets of the label set and the
/// search *closes* — no caps needed — which makes this the scaling
/// workload for the frontier explorer: layer `d` holds `C(n, d)` states,
/// so mid-search frontiers are wide enough to feed every core. `n = 17`
/// gives 131 072 states.
pub fn subset_lattice(n: usize) -> Workload {
    Workload {
        name: format!("subset_lattice/n{n}"),
        form: idar_gen::builders::subset_lattice(n),
        expected: Some(true),
    }
}

/// `F(A−, φ+, 1)` **deletion-free** — the monotone analogue of a
/// two-counter configuration space: two groups of `bits` at-most-once
/// labels (each group's popcount is one counter value), never deletable,
/// completion = all present. Reachable states are all `4^bits` label
/// subsets, reached by additions alone — the blow-up workload for
/// **frontier-only** exploration, which is sound exactly because the
/// form is deletion-free (node counts grow monotonically, so closed BFS
/// layers can never be revisited).
pub fn two_counter_monotone(bits: usize) -> Workload {
    Workload {
        name: format!("two_counter_monotone/b{bits}"),
        form: idar_gen::builders::monotone_lattice(2 * bits),
        expected: Some(true),
    }
}

/// `F(A+, φ−, 1)` — Thm 5.1 on a seeded random 3-CNF; expected verdict
/// from DPLL.
pub fn np_sat(seed: u64, vars: usize, clauses: usize) -> Workload {
    let cnf = random_3cnf(seed, vars, clauses);
    let expected = idar_logic::sat_solve(&cnf).is_some();
    Workload {
        name: format!("np_sat/v{vars}c{clauses}/seed{seed}"),
        form: idar_reductions::sat_to_completability::reduce(&cnf),
        expected: Some(expected),
    }
}

/// `F(A+, φ+, 1)` semi-soundness — Thm 5.6 on a seeded random 3-CNF;
/// expected: semi-sound iff UNSAT.
pub fn conp_sat(seed: u64, vars: usize, clauses: usize) -> Workload {
    let cnf = random_3cnf(seed, vars, clauses);
    let expected = idar_logic::sat_solve(&cnf).is_none();
    Workload {
        name: format!("conp_sat/v{vars}c{clauses}/seed{seed}"),
        form: idar_reductions::sat_to_non_semisoundness::reduce(&cnf),
        expected: Some(expected),
    }
}

/// `F(A−, φ−, 1)` — Thm 4.6 on dining philosophers; expected: completable
/// (the protocol deadlocks) for every `n ≥ 2`.
pub fn depth1_philosophers(n: usize) -> Workload {
    let inst = idar_deadlock::dining_philosophers(n);
    let expected = inst.find_reachable_deadlock().deadlock.is_some();
    Workload {
        name: format!("depth1_philosophers/n{n}"),
        form: idar_reductions::deadlock_to_completability::reduce(&inst).expect("no self loops"),
        expected: Some(expected),
    }
}

/// `F(A−, φ−, 1)` semi-soundness — Cor. 4.7 applied to an `np_sat`
/// workload; expected: semi-sound iff the CNF is satisfiable.
pub fn depth1_reset_build(seed: u64, vars: usize, clauses: usize) -> Workload {
    let base = np_sat(seed, vars, clauses);
    Workload {
        name: format!("depth1_reset_build/v{vars}c{clauses}/seed{seed}"),
        form: idar_reductions::completability_to_semisoundness::reduce(&base.form)
            .expect("depth-1 form"),
        expected: base.expected,
    }
}

/// `F(A+, φ−, k)` semi-soundness — Thm 5.3 on a seeded `QSAT_2k` formula
/// (`k` ∃/∀ pairs of `n` variables); expected: semi-sound iff the QBF is
/// false.
pub fn qsat_semisound(seed: u64, k: usize, n: usize) -> (Workload, Qbf) {
    let qbf = random_qsat2k(seed, k, n, 3 * k * n);
    let expected = !qbf.eval();
    let compiled = idar_reductions::qsat_to_semisoundness::reduce(&qbf).expect("qsat2k shape");
    (
        Workload {
            name: format!("qsat_semisound/k{k}n{n}/seed{seed}"),
            form: compiled.form,
            expected: Some(expected),
        },
        qbf,
    )
}

/// Scenario corpus — an unconstrained `depth`-level approval chain
/// (`F(A−, φ+, 1)`: rejection-free chains are deletion-free, so the
/// completability cell is polynomial; the workload is the realistic
/// shape, not a hardness family). Always completable: every level can
/// be signed in order.
pub fn approval_chain(depth: usize, approvers_per_level: usize, users: usize) -> Workload {
    let spec = idar_gen::ScenarioSpec::unconstrained(idar_gen::ChainSpec::simple(
        depth,
        approvers_per_level,
        users,
    ));
    let name = format!("approval_chain/d{depth}a{approvers_per_level}u{users}");
    Workload {
        form: spec.build(&name).form,
        name,
        expected: Some(true),
    }
}

/// Undecidable cell — Thm 4.1 on a library machine, compiled through the
/// shared [`idar_gen::builders::two_counter`] path.
pub fn tcm(machine: &TwoCounterMachine, name: &str, halts: bool) -> Workload {
    let compiled = idar_gen::builders::two_counter(machine);
    Workload {
        name: format!("tcm/{name}"),
        form: compiled.form,
        expected: Some(halts),
    }
}

/// A seeded random instance of a seeded random schema, for the
/// canonicalisation benches (Figure 3 scaling).
pub fn random_instance(seed: u64, schema_nodes: usize, instance_nodes: usize) -> Instance {
    let mut rng = XorShift::new(seed);
    let mut b = SchemaBuilder::new();
    let mut nodes = vec![SchemaNodeId::ROOT];
    for i in 0..schema_nodes {
        let parent = nodes[rng.below(nodes.len())];
        // A couple of shared labels to make bisimulation interesting.
        let label = format!("g{}", i % 7);
        if let Ok(c) = b.child(parent, &label) {
            nodes.push(c);
        }
    }
    let schema = Arc::new(b.build());
    let mut inst = Instance::empty(schema.clone());
    let mut inodes = vec![idar_core::InstNodeId::ROOT];
    for _ in 0..instance_nodes {
        let p = inodes[rng.below(inodes.len())];
        let sp = inst.schema_node(p);
        let kids = schema.children(sp);
        if kids.is_empty() {
            continue;
        }
        let edge = kids[rng.below(kids.len())];
        let c = inst.add_child(p, edge).expect("schema edge");
        inodes.push(c);
    }
    inst
}

/// A seeded random formula over `labels` distinct labels with roughly
/// `size` connectives (for the satisfiability benches).
pub fn random_formula(seed: u64, labels: usize, size: usize) -> Formula {
    let mut rng = XorShift::new(seed);
    gen_formula(&mut rng, labels, size, 2)
}

fn gen_formula(rng: &mut XorShift, labels: usize, size: usize, depth_budget: usize) -> Formula {
    if size == 0 {
        return Formula::label(&format!("g{}", rng.below(labels)));
    }
    match rng.below(5) {
        0 => gen_formula(rng, labels, size - 1, depth_budget).not(),
        1 | 2 => {
            let left = rng.below(size);
            gen_formula(rng, labels, left, depth_budget).and(gen_formula(
                rng,
                labels,
                size - 1 - left,
                depth_budget,
            ))
        }
        3 => {
            let left = rng.below(size);
            gen_formula(rng, labels, left, depth_budget).or(gen_formula(
                rng,
                labels,
                size - 1 - left,
                depth_budget,
            ))
        }
        _ => {
            if depth_budget == 0 {
                return Formula::label(&format!("g{}", rng.below(labels)));
            }
            let inner = gen_formula(rng, labels, size - 1, depth_budget - 1);
            Formula::Path(idar_core::PathExpr::Filter(
                Box::new(idar_core::PathExpr::Label(format!(
                    "g{}",
                    rng.below(labels)
                ))),
                Box::new(inner),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_solver::{completability, CompletabilityOptions, Verdict};

    #[test]
    fn chain_workload_is_consistent() {
        for n in [1, 4, 16] {
            let w = positive_chain(n);
            let r = completability(&w.form, &CompletabilityOptions::default());
            assert_eq!(r.verdict, Verdict::Holds, "{}", w.name);
        }
    }

    #[test]
    fn tree_workload_is_consistent() {
        let w = positive_tree(3, 2);
        let r = completability(&w.form, &CompletabilityOptions::default());
        assert_eq!(r.verdict, Verdict::Holds);
    }

    #[test]
    fn subset_lattice_space_is_exact() {
        use idar_solver::{ExploreLimits, Explorer};
        let w = subset_lattice(6);
        let graph = Explorer::new(&w.form, ExploreLimits::small()).graph();
        assert_eq!(graph.state_count(), 64); // 2^6 subsets
        assert!(graph.stats.closed);
        let r = completability(&w.form, &CompletabilityOptions::default());
        assert_eq!(r.verdict, Verdict::Holds);
        // The only complete state is the full set, at depth n.
        assert_eq!(r.witness_run.unwrap().len(), 6);
    }

    #[test]
    fn approval_chain_workload_is_consistent() {
        for depth in [2usize, 6] {
            let w = approval_chain(depth, 2, 3);
            let r = completability(&w.form, &CompletabilityOptions::default());
            assert_eq!(r.verdict, Verdict::Holds, "{}", w.name);
            // Minimal witness: one submission plus one signature per level.
            assert_eq!(r.witness_run.unwrap().len(), depth + 1, "{}", w.name);
        }
    }

    #[test]
    fn np_sat_expected_matches_solver() {
        for seed in 0..6 {
            let w = np_sat(seed, 4, 10);
            let r = completability(&w.form, &CompletabilityOptions::default());
            let expected = if w.expected.unwrap() {
                Verdict::Holds
            } else {
                Verdict::Fails
            };
            assert_eq!(r.verdict, expected, "{}", w.name);
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = np_sat(7, 5, 12);
        let b = np_sat(7, 5, 12);
        assert_eq!(
            a.form.completion().to_string(),
            b.form.completion().to_string()
        );
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn random_instance_generator() {
        let i = random_instance(11, 30, 200);
        assert!(i.live_count() > 50);
        let can = idar_core::bisim::canonical(&i);
        assert!(can.live_count() <= i.live_count());
    }

    #[test]
    fn random_formula_generator() {
        let f = random_formula(3, 4, 20);
        assert!(f.size() >= 20);
        // Parses back (display round-trip).
        let reparsed = Formula::parse(&f.to_string()).unwrap();
        assert_eq!(f, reparsed);
    }
}
