//! A minimal JSON writer for the machine-readable benchmark reports
//! (`BENCH_2.json`) — dependency-free, append-only, just enough structure
//! for CI artifacts and trend tooling to consume.

use std::fmt::Write as _;

/// An owned JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string value (escaped on render).
    Str(String),
    /// A finite number, rendered with exactly 3 decimal places
    /// (non-finite values render as `null`).
    Num(f64),
    /// An integer, rendered exactly.
    Int(u64),
    /// `true` / `false`.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n:.3}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"{}\": ", escape(k));
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 == pairs.len() { "\n" } else { ",\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj([
            ("name", Json::Str("subset_lattice/n16".into())),
            ("states", Json::Int(65536)),
            ("speedup", Json::Num(3.25)),
            ("closed", Json::Bool(true)),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = j.render();
        assert!(s.contains("\"states\": 65536"));
        assert!(s.contains("\"speedup\": 3.250"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".into());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\"\n");
    }
}
