//! A minimal JSON writer for the machine-readable benchmark reports
//! (`BENCH_2.json`) — dependency-free, append-only, just enough structure
//! for CI artifacts and trend tooling to consume. Also home of the
//! [`peak_rss_bytes`] probe the reports archive memory with.

use std::fmt::Write as _;

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where the probe does not exist
/// (non-Linux hosts). The kernel's high-water mark is monotone over the
/// process lifetime — suitable for archiving "how much RAM did this run
/// ever need" per report section, not for before/after comparisons
/// within one process (the in-process counting allocator covers those).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:    123456 kB`.
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// An owned JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string value (escaped on render).
    Str(String),
    /// A finite number, rendered with exactly 3 decimal places
    /// (non-finite values render as `null`).
    Num(f64),
    /// An integer, rendered exactly.
    Int(u64),
    /// `true` / `false`.
    Bool(bool),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n:.3}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"{}\": ", escape(k));
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 == pairs.len() { "\n" } else { ",\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj([
            ("name", Json::Str("subset_lattice/n16".into())),
            ("states", Json::Int(65536)),
            ("speedup", Json::Num(3.25)),
            ("closed", Json::Bool(true)),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = j.render();
        assert!(s.contains("\"states\": 65536"));
        assert!(s.contains("\"speedup\": 3.250"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".into());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn peak_rss_probe_is_sane_where_present() {
        if let Some(bytes) = peak_rss_bytes() {
            // A running test process has touched at least a megabyte and
            // far less than a terabyte.
            assert!(bytes > 1 << 20, "VmHWM {bytes} implausibly small");
            assert!(bytes < 1 << 40, "VmHWM {bytes} implausibly large");
        }
    }
}
