//! Regenerate every table and figure of the paper and print
//! paper-vs-measured evidence. `EXPERIMENTS.md` records this output.
//!
//! Alongside the human-readable transcript, the run writes a
//! machine-readable **`BENCH_10.json`** (schema v10: per-section wall-times,
//! thread counts *and peak-RSS snapshots*, the parallel-frontier object —
//! per-workload seq/par wall-times and speedups, or
//! `"skipped_single_core": true` when the host cannot host a fair
//! comparison — the SAT-engine cdcl-vs-dpll family timings, the
//! `state_store` section: states before/after symmetry reduction,
//! verdict-cache hit rate and cold-vs-cached speedup, manager throughput
//! — the `scenarios` section: the named approval-chain corpus with its
//! pinned verdicts plus chain-depth scaling wall-times up to depth 12 —
//! the `incremental` section: post-edit `safe_updates` latency answered
//! by a retained session graph vs an always-cold re-solve, with
//! per-workload speedup and graph-hit rate — the `static` section: the
//! fraction of the scenario corpus the pre-exploration screener decides
//! outright, its p99 latency vs the cold-exploration p50 it replaces,
//! dead-rule counts and the pruned-vs-unpruned state-count pin — the
//! `service` section:
//! idar-server throughput and p50/p99 latency under the seeded
//! interactive, analysis, and edit-burst load mixes, with the server's
//! final admission counters and session graph-hit rate — and the new
//! `capacity` section: the out-of-core state store, flat vs budgeted
//! allocator peaks, spill/fault/compression counters, and the
//! frontier-only blow-up run) so CI can archive the perf trajectory;
//! pass `--json PATH` to redirect it.
//!
//! Perf gates asserted inside the run: the pooled parallel engine must
//! reach speedup ≥ 1.0 on `subset_lattice(16)` whenever the host
//! reports ≥ 2 cores (a 1-core host skips the comparison instead of
//! archiving a bogus < 1 "regression"), CDCL must solve the
//! 200k-clause chain in < 100 ms, the incremental section must answer
//! post-edit `safe_updates` ≥ 10× faster warm than cold on both of its
//! workloads, the static section must decide ≥ 30% of its corpus with a
//! screener p99 ≤ 2 ms on every slice and under the scaled slice's
//! cold-exploration p50 (agreeing with exploration on every decided
//! case, pruned state counts identical to unpruned), the service
//! section must finish with zero request
//! errors, a clean drain (`accepted == completed` — no request is ever
//! admitted and then dropped), p99 ≤ 250 ms on every mix, and a
//! retained-graph path that actually engages under the edit-burst mix,
//! and the capacity section must explore `subset_lattice(18)` under its
//! budget with allocator peak ≤ 50% of the flat in-RAM baseline and
//! throughput within 2× of it, with identical `SearchStats`, and close
//! both `subset_lattice(20)` and the deletion-free two-counter blow-up —
//! sizes past the flat store's former n16/65k bench ceiling.
//!
//! ```text
//! cargo run --release -p idar-bench --bin reproduce \
//!   [-- --json BENCH_10.json] [--only capacity] [--capacity-budget BYTES]
//! ```
//!
//! `--only capacity` runs just the capacity section (the CI
//! capacity-smoke job's entry point); `--capacity-budget BYTES` overrides
//! the 1 MiB default arena budget, e.g. a deliberately tiny budget to
//! exercise the pager on a small box.

// The workspace libraries all `forbid(unsafe_code)`; this binary can only
// `deny` because the counting allocator below is the one sanctioned
// exception, quarantined behind an explicit `allow`.
#![deny(unsafe_code)]

use idar_bench::json::{peak_rss_bytes, Json};
use idar_bench::workloads;
use idar_core::{bisim, fragment, leave, Instance, Schema};
use idar_logic::qbf::Qbf;
use idar_solver::batch::{BatchAnalyzer, BatchItem};
use idar_solver::semisound::{semisoundness, SemisoundnessOptions};
use idar_solver::{
    completability, default_threads, CompletabilityOptions, ExploreLimits, Explorer, Verdict,
};
use std::sync::Arc;
use std::time::Instant;

/// A counting allocator wrapping [`std::alloc::System`], tracking live
/// bytes and a **resettable** high-water mark. The kernel's `VmHWM`
/// (archived per section via [`peak_rss_bytes`]) is monotone over the
/// process lifetime, so it cannot compare a flat run against a budgeted
/// run inside one process — the capacity gates measure through this
/// allocator instead and archive both numbers.
// The sole `unsafe` in the workspace: implementing `GlobalAlloc` is an
// unsafe trait contract by definition. The impl only forwards to
// `System` and updates atomics — no pointer arithmetic of its own.
#[allow(unsafe_code)]
mod peak_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub struct PeakAlloc;

    static CURRENT: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    unsafe impl GlobalAlloc for PeakAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
                PEAK.fetch_max(now, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                if new_size >= layout.size() {
                    let now = CURRENT.fetch_add(new_size - layout.size(), Ordering::Relaxed)
                        + new_size
                        - layout.size();
                    PEAK.fetch_max(now, Ordering::Relaxed);
                } else {
                    CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
                }
            }
            p
        }
    }

    /// Reset the high-water mark to the currently-live byte count and
    /// return that baseline: `peak() - reset_peak()` after a measured
    /// region is the region's net allocation peak.
    pub fn reset_peak() -> usize {
        let now = CURRENT.load(Ordering::Relaxed);
        PEAK.store(now, Ordering::Relaxed);
        now
    }

    /// The high-water mark since the last [`reset_peak`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static ALLOC: peak_alloc::PeakAlloc = peak_alloc::PeakAlloc;

/// One row of the engine-check table, recorded for `BENCH_10.json`.
struct ParRow {
    name: String,
    states: usize,
    seq_ms: f64,
    /// `None` on a single-core host (the comparison is skipped, not
    /// faked).
    par_ms: Option<f64>,
}

/// The parallel-frontier section: its rows plus the thread accounting
/// the JSON report needs.
struct ParReport {
    rows: Vec<ParRow>,
    /// Worker threads the parallel runs used (1 ⇒ comparison skipped).
    threads: usize,
    skipped_single_core: bool,
    /// A violated speedup gate, reported *after* the JSON is written so
    /// the regression that tripped the gate is still archived.
    gate_violation: Option<String>,
}

/// One row of the SAT-engine table, recorded for `BENCH_10.json`.
struct SatRow {
    family: String,
    vars: usize,
    clauses: usize,
    sat: bool,
    cdcl_ms: f64,
    /// `None` when DPLL was skipped (family sizes beyond its reach).
    dpll_ms: Option<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_10.json".to_string()),
        None => "BENCH_10.json".to_string(),
    };
    let only_capacity = match args.iter().position(|a| a == "--only") {
        Some(i) => {
            let what = args.get(i + 1).map(String::as_str).unwrap_or("");
            assert_eq!(what, "capacity", "--only supports only `capacity`");
            true
        }
        None => false,
    };
    let capacity_budget: usize = match args.iter().position(|a| a == "--capacity-budget") {
        Some(i) => args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .expect("--capacity-budget takes a byte count"),
        None => 1 << 20,
    };
    let run_start = Instant::now();
    // Per-section wall-time, the explorer worker-thread count the
    // section's searches were allowed — a 1-thread section on a 16-core
    // host and a 16-thread section must be distinguishable in the
    // archived report — and the process peak RSS (`VmHWM`) as of the end
    // of the section, so the report carries memory alongside wall-time.
    let mut sections: Vec<(&'static str, f64, usize, Option<u64>)> = Vec::new();
    let mut timed = |name: &'static str, threads: usize, f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        sections.push((
            name,
            t.elapsed().as_secs_f64() * 1e3,
            threads,
            peak_rss_bytes(),
        ));
    };

    if only_capacity {
        let mut capacity_report = None;
        timed("capacity", 1, &mut || {
            capacity_report = Some(capacity(capacity_budget))
        });
        let capacity_report = capacity_report.expect("capacity section ran");
        let report = Json::obj([
            ("schema_version", Json::Int(10)),
            ("generated_by", Json::Str("idar-bench reproduce".into())),
            ("threads", Json::Int(default_threads() as u64)),
            ("sections", sections_json(&sections)),
            ("capacity", capacity_report.to_json()),
            (
                "total_ms",
                Json::Num(run_start.elapsed().as_secs_f64() * 1e3),
            ),
        ]);
        match std::fs::write(&json_path, report.render()) {
            Ok(()) => println!("\nmachine-readable report written to {json_path}"),
            Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
        }
        if let Some(violation) = capacity_report.gate_violation {
            eprintln!("\nCAPACITY GATE VIOLATED: {violation}");
            std::process::exit(1);
        }
        println!("Capacity section completed.");
        return;
    }

    banner("Table 1 (paper): complexity matrix");
    print!("{}", fragment::render_table1());

    let dt = default_threads();
    timed(
        "table1_completability_positive",
        dt,
        &mut table1_completability_positive,
    );
    timed(
        "table1_completability_np",
        dt,
        &mut table1_completability_np,
    );
    timed(
        "table1_completability_depth1",
        dt,
        &mut table1_completability_depth1,
    );
    timed("table1_undecidable", dt, &mut table1_undecidable);
    timed(
        "table1_semisoundness_conp",
        dt,
        &mut table1_semisoundness_conp,
    );
    timed(
        "table1_semisoundness_qsat",
        dt,
        &mut table1_semisoundness_qsat,
    );
    timed(
        "table1_semisoundness_depth1",
        dt,
        &mut table1_semisoundness_depth1,
    );
    timed(
        "corollary_4_5_satisfiability",
        dt,
        &mut corollary_4_5_satisfiability,
    );
    timed("figures", 1, &mut figures);
    timed("running_example", dt, &mut running_example);
    timed("transformations", dt, &mut transformations);
    let mut par_report = None;
    timed("parallel_frontier", dt, &mut || {
        par_report = Some(parallel_frontier())
    });
    let par_report = par_report.expect("parallel_frontier section ran");
    let mut sat_rows = Vec::new();
    timed("sat_engines", 1, &mut || sat_rows = sat_engines());
    timed("batch_analysis", dt, &mut batch_analysis);
    let mut store_report = None;
    // The section's symmetry comparison pins threads to 1, but the cold
    // cache-speedup analysis and the manager throughput run the explorer
    // at the default count — record the larger grant.
    timed("state_store", dt, &mut || {
        store_report = Some(state_store())
    });
    let store_report = store_report.expect("state_store section ran");
    let mut scenario_report = None;
    timed("scenarios", dt, &mut || scenario_report = Some(scenarios()));
    let scenario_report = scenario_report.expect("scenarios section ran");
    let mut incremental_report = None;
    timed("incremental", dt, &mut || {
        incremental_report = Some(incremental())
    });
    let incremental_report = incremental_report.expect("incremental section ran");
    let mut static_report = None;
    timed("static", 1, &mut || static_report = Some(static_screen()));
    let static_report = static_report.expect("static section ran");
    let mut service_report = None;
    timed("service", dt, &mut || service_report = Some(service()));
    let service_report = service_report.expect("service section ran");
    let mut capacity_report = None;
    timed("capacity", 1, &mut || {
        capacity_report = Some(capacity(capacity_budget))
    });
    let capacity_report = capacity_report.expect("capacity section ran");

    let report = Json::obj([
        ("schema_version", Json::Int(10)),
        ("generated_by", Json::Str("idar-bench reproduce".into())),
        ("threads", Json::Int(default_threads() as u64)),
        ("sections", sections_json(&sections)),
        (
            "parallel_frontier",
            Json::obj([
                ("threads", Json::Int(par_report.threads as u64)),
                (
                    "skipped_single_core",
                    Json::Bool(par_report.skipped_single_core),
                ),
                (
                    "workloads",
                    Json::Arr(
                        par_report
                            .rows
                            .iter()
                            .map(|r| {
                                let mut pairs = vec![
                                    ("workload".to_string(), Json::Str(r.name.clone())),
                                    ("states".to_string(), Json::Int(r.states as u64)),
                                    ("seq_ms".to_string(), Json::Num(r.seq_ms)),
                                ];
                                if let Some(par_ms) = r.par_ms {
                                    pairs.push(("par_ms".to_string(), Json::Num(par_ms)));
                                    pairs.push((
                                        "speedup".to_string(),
                                        Json::Num(r.seq_ms / par_ms.max(1e-9)),
                                    ));
                                }
                                Json::Obj(pairs)
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "sat_engine",
            Json::Arr(
                sat_rows
                    .iter()
                    .map(|r| {
                        let mut pairs = vec![
                            ("family".to_string(), Json::Str(r.family.clone())),
                            ("vars".to_string(), Json::Int(r.vars as u64)),
                            ("clauses".to_string(), Json::Int(r.clauses as u64)),
                            ("sat".to_string(), Json::Bool(r.sat)),
                            ("cdcl_ms".to_string(), Json::Num(r.cdcl_ms)),
                        ];
                        if let Some(d) = r.dpll_ms {
                            pairs.push(("dpll_ms".to_string(), Json::Num(d)));
                        }
                        Json::Obj(pairs)
                    })
                    .collect(),
            ),
        ),
        ("state_store", store_report.to_json()),
        ("scenarios", scenario_report.to_json()),
        ("incremental", incremental_report.to_json()),
        ("static", static_report.to_json()),
        ("service", service_report.to_json()),
        ("capacity", capacity_report.to_json()),
        (
            "total_ms",
            Json::Num(run_start.elapsed().as_secs_f64() * 1e3),
        ),
    ]);
    match std::fs::write(&json_path, report.render()) {
        Ok(()) => println!("\nmachine-readable report written to {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }

    // The speedup gate fails the run only *after* the report is on disk,
    // so the regression that tripped it is still archived and diffable.
    if let Some(violation) = par_report.gate_violation {
        eprintln!("\nPERF GATE VIOLATED: {violation}");
        std::process::exit(1);
    }
    if let Some(violation) = incremental_report.gate_violation {
        eprintln!("\nINCREMENTAL GATE VIOLATED: {violation}");
        std::process::exit(1);
    }
    if let Some(violation) = static_report.gate_violation {
        eprintln!("\nSTATIC GATE VIOLATED: {violation}");
        std::process::exit(1);
    }
    if let Some(violation) = service_report.gate_violation {
        eprintln!("\nSERVICE GATE VIOLATED: {violation}");
        std::process::exit(1);
    }
    if let Some(violation) = capacity_report.gate_violation {
        eprintln!("\nCAPACITY GATE VIOLATED: {violation}");
        std::process::exit(1);
    }

    println!("All experiments completed.");
}

/// The `sections` array: per-section wall-time, thread grant, and the
/// `VmHWM` peak-RSS snapshot taken as the section finished.
fn sections_json(sections: &[(&'static str, f64, usize, Option<u64>)]) -> Json {
    Json::Arr(
        sections
            .iter()
            .map(|(name, ms, threads, rss)| {
                let mut pairs = vec![
                    ("name".to_string(), Json::Str((*name).into())),
                    ("wall_ms".to_string(), Json::Num(*ms)),
                    ("threads".to_string(), Json::Int(*threads as u64)),
                ];
                if let Some(rss) = rss {
                    pairs.push(("peak_rss_bytes".to_string(), Json::Int(*rss)));
                }
                Json::Obj(pairs)
            })
            .collect(),
    )
}

fn banner(s: &str) {
    println!("\n{:=^74}", format!(" {s} "));
}

fn verdict_of(b: bool) -> Verdict {
    if b {
        Verdict::Holds
    } else {
        Verdict::Fails
    }
}

/// Rows F(A+, φ+, ·) — completability in P (Thm 5.5).
fn table1_completability_positive() {
    banner("T1.compl F(A+,phi+,*) -- polynomial saturation (Thm 5.5)");
    println!(
        "{:<28}{:>10}{:>14}{:>10}",
        "workload", "size", "time", "verdict"
    );
    for n in [8usize, 16, 32, 64, 128, 256] {
        let w = workloads::positive_chain(n);
        let t = Instant::now();
        let r = completability(&w.form, &CompletabilityOptions::default());
        let dt = t.elapsed();
        println!(
            "{:<28}{:>10}{:>14}{:>10}",
            w.name,
            n,
            format!("{dt:.2?}"),
            r.verdict.to_string()
        );
        assert_eq!(r.verdict, Verdict::Holds);
    }
    println!("shape check: doubling n must scale polynomially (roughly x4 for");
    println!("the quadratic saturation loop), never exponentially.");
}

/// Rows F(A+, φ−, 1/k) — completability NP-complete (Thm 5.1 / Thm 5.2).
fn table1_completability_np() {
    banner("T1.compl F(A+,phi-,1/k) -- NP via Thm 5.1 families vs DPLL");
    println!(
        "{:<12}{:>10}{:>12}{:>12}{:>14}",
        "vars", "clauses", "instances", "agree", "total time"
    );
    for vars in [4usize, 6, 8, 10] {
        let clauses = vars * 3;
        let t = Instant::now();
        let mut agree = 0;
        let total = 10;
        for seed in 0..total {
            let w = workloads::np_sat(seed, vars, clauses);
            let r = completability(&w.form, &CompletabilityOptions::default());
            if r.verdict == verdict_of(w.expected.unwrap()) {
                agree += 1;
            }
        }
        println!(
            "{:<12}{:>10}{:>12}{:>12}{:>14}",
            vars,
            clauses,
            total,
            format!("{agree}/{total}"),
            format!("{:.2?}", t.elapsed())
        );
        assert_eq!(agree, total);
    }
}

/// Rows F(A−, φ±, 1) — completability PSPACE-complete (Thm 4.6).
fn table1_completability_depth1() {
    banner("T1.compl F(A-,phi-,1) -- Thm 4.6 deadlock reduction, exact depth-1");
    println!(
        "{:<26}{:>10}{:>12}{:>14}{:>10}",
        "workload", "labels", "states", "time", "verdict"
    );
    for n in [2usize, 3, 4, 5] {
        let w = workloads::depth1_philosophers(n);
        let labels = w.form.schema().edge_count();
        let t = Instant::now();
        let r = completability(&w.form, &CompletabilityOptions::default());
        let dt = t.elapsed();
        println!(
            "{:<26}{:>10}{:>12}{:>14}{:>10}",
            w.name,
            labels,
            r.stats.states,
            format!("{dt:.2?}"),
            r.verdict.to_string()
        );
        assert_eq!(r.verdict, verdict_of(w.expected.unwrap()));
    }
    println!("shape check: canonical state count grows exponentially with n");
    println!("(PSPACE-complete cell; explicit search trades space for time).");
}

/// Rows F(A−, φ±, ≥2) — undecidable (Thm 4.1 / Cor 4.2).
fn table1_undecidable() {
    banner("T1 undecidable cells -- Thm 4.1 machine simulation");
    println!(
        "{:<26}{:>8}{:>12}{:>14}{:>18}",
        "machine", "halts", "verdict", "time", "trace agreement"
    );
    let machines: Vec<(&str, idar_machines::TwoCounterMachine, bool)> = vec![
        (
            "count_up(2)",
            idar_machines::library::count_up_then_accept(2),
            true,
        ),
        (
            "transfer(2)",
            idar_machines::library::transfer_c1_to_c2(2),
            true,
        ),
        ("even(4)", idar_machines::library::accept_iff_even(4), true),
        ("even(3)", idar_machines::library::accept_iff_even(3), false),
        ("diverge", idar_machines::library::diverge(), false),
        ("ping_pong", idar_machines::library::ping_pong(), false),
    ];
    for (name, machine, halts) in machines {
        let compiled = idar_reductions::tcm_to_completability::reduce(&machine);
        // Trace agreement: micro-stepped configurations == simulator.
        let configs = 8usize;
        let got = compiled.trace(configs, 20_000);
        let want: Vec<_> = machine
            .trace(configs as u64)
            .into_iter()
            .take(got.len())
            .collect();
        let trace_ok = got == want;
        let limits = if halts {
            ExploreLimits {
                max_states: 2_000_000,
                max_state_size: 256,
                ..ExploreLimits::default()
            }
        } else {
            ExploreLimits {
                max_states: 20_000,
                max_state_size: 64,
                ..ExploreLimits::default()
            }
        };
        let t = Instant::now();
        let r = completability(&compiled.form, &CompletabilityOptions::with_limits(limits));
        let dt = t.elapsed();
        println!(
            "{:<26}{:>8}{:>12}{:>14}{:>18}",
            name,
            halts,
            r.verdict.to_string(),
            format!("{dt:.2?}"),
            if trace_ok {
                "configs match"
            } else {
                "MISMATCH"
            }
        );
        assert!(trace_ok);
        if halts {
            assert_eq!(r.verdict, Verdict::Holds);
        } else {
            assert_ne!(r.verdict, Verdict::Holds);
        }
    }
    println!("halting <=> completable on the suite; diverging machines can only be");
    println!("bounded-Unknown (the cell is undecidable, Thm 4.1).");
}

/// Row F(A+, φ+, 1) semi-soundness — coNP-complete (Thm 5.6 / Cor 5.7).
fn table1_semisoundness_conp() {
    banner("T1.semi F(A+,phi+,1) -- coNP via Thm 5.6 families vs DPLL");
    println!(
        "{:<12}{:>10}{:>12}{:>12}{:>14}",
        "vars", "clauses", "instances", "agree", "total time"
    );
    for vars in [3usize, 4, 5, 6] {
        let t = Instant::now();
        let mut agree = 0;
        let total = 10;
        for seed in 0..total {
            let w = workloads::conp_sat(seed + 100, vars, vars * 3);
            let r = semisoundness(&w.form, &SemisoundnessOptions::default());
            if r.verdict == verdict_of(w.expected.unwrap()) {
                agree += 1;
            }
        }
        println!(
            "{:<12}{:>10}{:>12}{:>12}{:>14}",
            vars,
            vars * 3,
            total,
            format!("{agree}/{total}"),
            format!("{:.2?}", t.elapsed())
        );
        assert_eq!(agree, total);
    }
}

/// Row F(A+, φ−, k) semi-soundness — Π^P_2k (Thm 5.3).
fn table1_semisoundness_qsat() {
    banner("T1.semi F(A+,phi-,k) -- Thm 5.3 QSAT_2k families vs QBF solver");
    println!("k = 1 (depth 1, exact):");
    println!("{:<8}{:>12}{:>12}{:>14}", "n", "instances", "agree", "time");
    for n in [1usize, 2, 3] {
        let t = Instant::now();
        let mut agree = 0;
        let total = 8;
        for seed in 0..total {
            let (w, _) = workloads::qsat_semisound(seed, 1, n);
            let r = semisoundness(&w.form, &SemisoundnessOptions::default());
            if r.verdict == verdict_of(w.expected.unwrap()) {
                agree += 1;
            }
        }
        println!(
            "{:<8}{:>12}{:>12}{:>14}",
            n,
            total,
            format!("{agree}/{total}"),
            format!("{:.2?}", t.elapsed())
        );
        assert_eq!(agree, total);
    }
    println!("k = 2 (depth 2): strategy-witness protocol");
    let mut checked = 0;
    for seed in 0..10u64 {
        let qbf = idar_logic::gen::random_qsat2k(seed, 2, 1, 6);
        let compiled = idar_reductions::qsat_to_semisoundness::reduce(&qbf).unwrap();
        let witness = idar_reductions::qsat_to_semisoundness::strategy_witness(&compiled, &qbf);
        match (qbf.eval(), witness) {
            (true, Some(w)) => {
                let run = idar_reductions::qsat_to_semisoundness::run_to(&compiled, &w);
                let replay = compiled.form.replay(&run).unwrap();
                assert!(!idar_reductions::qsat_to_semisoundness::ucfree_completable(
                    &compiled,
                    replay.last()
                ));
                checked += 1;
            }
            (false, None) => checked += 1,
            (t, w) => panic!("strategy witness mismatch: qbf={t} witness={}", w.is_some()),
        }
    }
    println!("  10/10 QBFs: witness exists & is reachable+incompletable iff QBF true ({checked} checked)");
}

/// Rows F(A−, φ±, 1) semi-soundness — PSPACE-complete (Cor 4.7).
fn table1_semisoundness_depth1() {
    banner("T1.semi F(A-,phi-,1) -- Cor 4.7 reset/build round-trips");
    println!(
        "{:<12}{:>12}{:>12}{:>14}",
        "vars", "instances", "agree", "time"
    );
    for vars in [3usize, 4, 5] {
        let t = Instant::now();
        let mut agree = 0;
        let total = 6;
        for seed in 0..total {
            let w = workloads::depth1_reset_build(seed + 40, vars, vars * 3);
            let r = semisoundness(&w.form, &SemisoundnessOptions::default());
            if r.verdict == verdict_of(w.expected.unwrap()) {
                agree += 1;
            }
        }
        println!(
            "{:<12}{:>12}{:>12}{:>14}",
            vars,
            total,
            format!("{agree}/{total}"),
            format!("{:.2?}", t.elapsed())
        );
        assert_eq!(agree, total);
    }
    println!("(G completable <=> reset/build G' semi-sound, decided exactly at depth 1)");
}

/// Corollary 4.5 — satisfiability NP/PSPACE.
fn corollary_4_5_satisfiability() {
    banner("Cor 4.5 -- satisfiability: SAT and QSAT encodings vs baselines");
    use idar_solver::satisfiability::{satisfiable, SatOptions};
    let t = Instant::now();
    let mut agree = 0;
    let total = 20;
    for seed in 0..total {
        let cnf = idar_logic::gen::random_3cnf(seed, 5, 12);
        let f = idar_reductions::sat_to_satisfiability::reduce(&cnf);
        if satisfiable(&f, &SatOptions::default()).is_sat() == idar_logic::sat_solve(&cnf).is_some()
        {
            agree += 1;
        }
    }
    println!(
        "SAT encoding:  {agree}/{total} agree with DPLL   ({:.2?})",
        t.elapsed()
    );
    assert_eq!(agree, total);

    let t = Instant::now();
    let mut agree = 0;
    let total = 12;
    for seed in 0..total {
        let qbf = {
            use idar_logic::gen::Rng;
            use idar_logic::qbf::Quantifier;
            use idar_logic::Var;
            let mut rng = idar_logic::gen::XorShift::new(seed * 31 + 5);
            let nvars = 2 + rng.below(2);
            let blocks = (0..nvars)
                .map(|v| {
                    let q = if rng.bool() {
                        Quantifier::Exists
                    } else {
                        Quantifier::ForAll
                    };
                    (q, vec![Var(v as u32)])
                })
                .collect();
            Qbf::new(blocks, idar_logic::gen::random_prop(seed + 900, nvars, 5))
        };
        let f = idar_reductions::qsat_to_satisfiability::reduce(&qbf);
        if satisfiable(&f, &SatOptions::default()).is_sat() == qbf.eval() {
            agree += 1;
        }
    }
    println!(
        "QSAT encoding: {agree}/{total} agree with QBF solver ({:.2?})",
        t.elapsed()
    );
    assert_eq!(agree, total);
}

/// Figures 1–3.
fn figures() {
    banner("Figure 1 -- the leave application schema");
    let s = leave::schema();
    print!("{}", s.render());
    assert_eq!(s.depth(), 3);
    assert_eq!(s.node_count(), 13);

    banner("Figure 2 -- two instances of the schema");
    let a = leave::figure2a(s.clone());
    println!("(a) submitted application, two periods:");
    print!("{}", a.render());
    let b = leave::figure2b(s.clone());
    println!("(b) single period, rejected:");
    print!("{}", b.render());

    banner("Figure 3 -- an instance and its canonical instance");
    let fs = Arc::new(Schema::parse("a(c(e), d), b(c, d(e))").unwrap());
    let inst = Instance::parse(
        fs.clone(),
        "a(c, c(e)), a(c, c(e)), a(c(e), c(e)), a(c(e)), b(c, d(e), d(e))",
    )
    .unwrap();
    println!("(a) instance ({} nodes):", inst.live_count());
    print!("{}", inst.render());
    let can = bisim::canonical(&inst);
    println!("(b) canonical instance ({} nodes):", can.live_count());
    print!("{}", can.render());
    let expected = Instance::parse(fs, "a(c, c(e)), a(c(e)), b(c, d(e))").unwrap();
    assert!(can.isomorphic(&expected));
    assert!(bisim::equivalent(&inst, &can));
    println!("check: can(I) matches the expected quotient; I ~ can(I) (Lemma 3.9).");
}

/// Example 3.12 and the Sec. 3.5 claims.
fn running_example() {
    banner("Example 3.12 / Sec 3.5 -- the leave application workflow");
    let g = leave::example_3_12();
    println!("fragment: {}", fragment::classify(&g));

    let run = leave::complete_run(&g);
    assert!(g.is_complete_run(&run));
    println!(
        "claim: phi = f is completable              -> complete run of {} steps",
        run.len()
    );

    let capped = ExploreLimits {
        multiplicity_cap: Some(2),
        ..ExploreLimits::small()
    };
    let g_ns = g.with_completion(idar_core::Formula::parse("f & !s").unwrap());
    let r = completability(&g_ns, &CompletabilityOptions::with_limits(capped));
    assert_ne!(r.verdict, Verdict::Holds);
    println!(
        "claim: phi = f & !s has no full run        -> none found \
         (exhaustive up to sibling multiplicity 2; honest verdict: {})",
        r.verdict
    );

    let g_inv = g.with_completion(leave::both_decisions_invariant());
    let r = completability(&g_inv, &CompletabilityOptions::with_limits(capped));
    assert_ne!(r.verdict, Verdict::Holds);
    println!(
        "claim: d[a & r] is never reachable         -> no violation found \
         (same bounds; honest verdict: {})",
        r.verdict
    );

    let variant = leave::section_3_5_variant();
    let rc = completability(&variant, &CompletabilityOptions::with_limits(capped));
    assert_eq!(rc.verdict, Verdict::Holds);
    let rs = semisoundness(
        &variant,
        &SemisoundnessOptions {
            limits: ExploreLimits {
                multiplicity_cap: Some(1),
                max_states: 50_000,
                ..ExploreLimits::small()
            },
            ..Default::default()
        },
    );
    assert_eq!(rs.verdict, Verdict::Fails);
    println!(
        "claim: Sec 3.5 variant completable          -> {}",
        rc.verdict
    );
    println!(
        "claim: Sec 3.5 variant not semi-sound       -> semi-soundness {}",
        rs.verdict
    );
    if let Some(cex) = rs.counterexample {
        let replay = variant.replay(&cex).unwrap();
        println!(
            "counterexample run of {} steps reaches a final-without-decision instance:",
            cex.len()
        );
        print!("{}", replay.last().render());
    }
}

/// The pooled parallel frontier engine against the sequential engine on
/// a closed 2ⁿ-state space (not a paper experiment — the engineering
/// validation that parallel exploration is verdict- and state-set-
/// identical, plus its wall-clock on this machine).
///
/// On a single-core host the seq-vs-par comparison is **skipped** and
/// recorded as such: measuring a 2-thread pool on 1 core measures pure
/// coordination overhead and used to archive a speedup < 1 into the
/// bench report as if the engine had regressed. On a multi-core host the
/// run *gates* on speedup ≥ 1.0 for the largest workload (best-of-two
/// runs per engine, so a background blip cannot flake the gate).
fn parallel_frontier() -> ParReport {
    banner("Engine check -- pooled parallel frontier vs sequential explorer");
    let threads = default_threads();
    println!("hardware threads available: {threads}");
    let skipped = threads < 2;
    if skipped {
        println!("single-core host: seq-vs-par comparison skipped (recorded as");
        println!("\"skipped_single_core\" -- a 2-thread pool on 1 core would measure");
        println!("pure coordination overhead, not the engine)");
    }
    println!(
        "{:<24}{:>10}{:>14}{:>14}{:>10}",
        "workload", "states", "seq time", "par time", "speedup"
    );
    let mut rows = Vec::new();
    let mut gate_violation = None;
    for n in [12usize, 14, 16] {
        let w = workloads::subset_lattice(n);
        let limits = ExploreLimits {
            max_states: 1 << 20,
            ..ExploreLimits::default()
        };
        // Best of two runs per engine: one measurement per engine is at
        // the mercy of a single scheduler blip, and this number gates CI.
        let measure = |engine_threads: usize| {
            let mut best: Option<(f64, _)> = None;
            for _ in 0..2 {
                let t = Instant::now();
                let g = Explorer::new(&w.form, limits)
                    .with_threads(engine_threads)
                    .graph();
                let ms = t.elapsed().as_secs_f64() * 1e3;
                if best.as_ref().is_none_or(|(b, _)| ms < *b) {
                    best = Some((ms, g));
                }
            }
            best.expect("measured")
        };
        let (seq_ms, seq) = measure(1);
        let par = if skipped {
            None
        } else {
            let (par_ms, par) = measure(threads);
            assert_eq!(seq.state_count(), par.state_count());
            assert_eq!(seq.stats.closed, par.stats.closed);
            assert_eq!(seq.stats.transitions, par.stats.transitions);
            Some(par_ms)
        };
        println!(
            "{:<24}{:>10}{:>14}{:>14}{:>10}",
            w.name,
            seq.state_count(),
            format!("{:.2}ms", seq_ms),
            par.map_or("skipped".to_string(), |p| format!("{p:.2}ms")),
            par.map_or("-".to_string(), |p| format!("{:.2}x", seq_ms / p)),
        );
        if n == 16 {
            if let Some(par_ms) = par {
                let speedup = seq_ms / par_ms.max(1e-9);
                if speedup < 1.0 {
                    // Deferred, not asserted here: the violation must not
                    // abort the run before BENCH_10.json is written, or
                    // the regression that tripped the gate would be the
                    // one run with no archived report.
                    gate_violation = Some(format!(
                        "pooled engine must not lose to sequential on subset_lattice(16) \
                         with {threads} threads (seq {seq_ms:.1} ms vs par {par_ms:.1} ms, \
                         speedup {speedup:.2})"
                    ));
                }
            }
        }
        rows.push(ParRow {
            name: w.name.clone(),
            states: seq.state_count(),
            seq_ms,
            par_ms: par,
        });
    }
    if !skipped {
        println!("(gate: speedup >= 1.0 enforced on subset_lattice(16) after the JSON");
        println!("report is written; the PR-5 target on a >= 4-core host is >= 1.5x)");
    }
    ParReport {
        rows,
        threads: if skipped { 1 } else { threads },
        skipped_single_core: skipped,
        gate_violation,
    }
}

/// The SAT-engine check: CDCL vs DPLL on the `idar_gen::cnf` families.
/// Not a paper experiment — the engineering validation that the CDCL
/// engine (the default `sat_solve` behind every Thm 5.1 / Thm 5.6 /
/// Cor. 4.5 baseline) is verdict-identical to the independent DPLL
/// baseline, plus its wall-clock on this machine. The 200k-clause
/// implication chain is the historical regression: 53.6 s on the
/// pre-indexed DPLL, < 100 ms required from CDCL (asserted below).
fn sat_engines() -> Vec<SatRow> {
    use idar_gen::cnf;
    use idar_logic::Engine;
    banner("Engine check -- CDCL vs DPLL on chain/pigeonhole/random-3CNF");
    println!(
        "{:<26}{:>8}{:>10}{:>8}{:>12}{:>12}",
        "family", "vars", "clauses", "sat", "cdcl", "dpll"
    );
    let mut rows = Vec::new();
    let suite: Vec<(String, idar_logic::Cnf, bool)> = vec![
        ("chain/200k".into(), cnf::implication_chain(200_000), true),
        (
            "chain-unsat/200k".into(),
            cnf::implication_chain_unsat(200_000),
            false,
        ),
        ("pigeonhole/6".into(), cnf::pigeonhole(6), false),
        // The random-3CNF verdicts are pinned constants (the instances
        // are pure functions of their seeds): an independent expectation,
        // not an answer echoed back from the engine under test.
        (
            "random3cnf/v30c126".into(),
            cnf::random_3cnf(11, 30, 126),
            true,
        ),
        (
            "random3cnf/v80c336".into(),
            cnf::random_3cnf(7, 80, 336),
            true,
        ),
    ];
    for (family, instance, expected) in suite {
        let t = Instant::now();
        let cdcl = Engine::Cdcl.solve(&instance);
        let cdcl_ms = t.elapsed().as_secs_f64() * 1e3;
        if let Some(m) = &cdcl {
            assert!(instance.eval(m), "{family}: cdcl model must satisfy");
        }
        assert_eq!(cdcl.is_some(), expected, "{family}: cdcl verdict");
        // DPLL runs everywhere but the large random instance (no
        // learning: the phase-transition family blows up past ~40 vars).
        let dpll_ms = if family != "random3cnf/v80c336" {
            let t = Instant::now();
            let dpll = Engine::Dpll.solve(&instance);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(dpll.is_some(), expected, "{family}: dpll verdict");
            Some(ms)
        } else {
            None
        };
        println!(
            "{:<26}{:>8}{:>10}{:>8}{:>12}{:>12}",
            family,
            instance.vars,
            instance.clauses.len(),
            if expected { "sat" } else { "unsat" },
            format!("{cdcl_ms:.2}ms"),
            dpll_ms.map_or("-".to_string(), |d| format!("{d:.2}ms")),
        );
        if family == "chain/200k" {
            assert!(
                cdcl_ms < 100.0,
                "CDCL must solve the 200k chain in < 100 ms (took {cdcl_ms:.1} ms; \
                 the pre-indexed DPLL baseline took 53.6 s)"
            );
        }
        rows.push(SatRow {
            family,
            vars: instance.vars,
            clauses: instance.clauses.len(),
            sat: expected,
            cdcl_ms,
            dpll_ms,
        });
    }
    println!("(chain/200k asserts the < 100 ms acceptance bound; the quadratic");
    println!("pre-PR baseline needed 53.6 s on this workload)");
    rows
}

/// The batch analyzer over a cross-section of Table 1 families: every
/// form's completability / semi-soundness / completion-satisfiability in
/// one concurrent sweep, verdicts checked against the baselines.
fn batch_analysis() {
    banner("Batch analysis -- concurrent sweep over Table 1 families");
    let mut items = Vec::new();
    let mut expected = Vec::new();
    for n in [8usize, 32] {
        let w = workloads::positive_chain(n);
        expected.push(w.expected);
        items.push(BatchItem::new(w.name, w.form));
    }
    for seed in 0..4 {
        let w = workloads::np_sat(seed, 5, 15);
        expected.push(w.expected);
        items.push(BatchItem::new(w.name, w.form));
    }
    for n in [2usize, 3] {
        let w = workloads::depth1_philosophers(n);
        expected.push(w.expected);
        items.push(BatchItem::new(w.name, w.form));
    }
    {
        let w = workloads::subset_lattice(10);
        expected.push(w.expected);
        items.push(BatchItem::new(w.name, w.form));
    }

    let t = Instant::now();
    let reports = BatchAnalyzer::new()
        .with_limits(ExploreLimits::default())
        .run(items);
    let dt = t.elapsed();

    println!(
        "{:<30}{:>10}{:>12}{:>10}",
        "workload", "compl", "semisound", "phi-sat"
    );
    let mut agree = 0;
    for (r, exp) in reports.iter().zip(&expected) {
        let compl = r.completability.as_ref().unwrap().verdict;
        if compl == verdict_of(exp.unwrap()) {
            agree += 1;
        }
        println!(
            "{:<30}{:>10}{:>12}{:>10}",
            r.name,
            compl.to_string(),
            r.semisoundness.as_ref().unwrap().verdict.to_string(),
            if r.satisfiability.as_ref().unwrap().verdict == Verdict::Holds {
                "sat"
            } else {
                "unsat"
            },
        );
    }
    println!(
        "{agree}/{} completability verdicts agree with baselines ({dt:.2?} total, {} threads)",
        reports.len(),
        default_threads(),
    );
    assert_eq!(agree, reports.len());
}

/// The `state_store` report: symmetry-reduction shrinkage, verdict-cache
/// speedup, and form-manager throughput. Written to `BENCH_10.json`.
struct StoreReport {
    symmetry_workload: String,
    plain_states: usize,
    reduced_states: usize,
    cache_workload: String,
    cold_ms: f64,
    cached_ms: f64,
    manager_cold_ms: f64,
    manager_warm_ms: f64,
    manager_hit_rate: f64,
}

impl StoreReport {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "symmetry_workload",
                Json::Str(self.symmetry_workload.clone()),
            ),
            ("plain_states", Json::Int(self.plain_states as u64)),
            ("reduced_states", Json::Int(self.reduced_states as u64)),
            (
                "reduction_factor",
                Json::Num(self.plain_states as f64 / self.reduced_states.max(1) as f64),
            ),
            ("cache_workload", Json::Str(self.cache_workload.clone())),
            ("cold_ms", Json::Num(self.cold_ms)),
            ("cached_ms", Json::Num(self.cached_ms)),
            (
                "cache_speedup",
                Json::Num(self.cold_ms / self.cached_ms.max(1e-9)),
            ),
            ("manager_cold_ms", Json::Num(self.manager_cold_ms)),
            ("manager_warm_ms", Json::Num(self.manager_warm_ms)),
            (
                "manager_speedup",
                Json::Num(self.manager_cold_ms / self.manager_warm_ms.max(1e-9)),
            ),
            ("manager_hit_rate", Json::Num(self.manager_hit_rate)),
        ])
    }
}

/// The unified-pipeline engine check: (1) symmetry reduction — the
/// canonical quotient vs the plain ordered-tree space on the subset
/// lattice; (2) the cross-analysis `VerdictCache` — cold vs cached
/// `AnalysisRequest` runs; (3) the `FormManager`'s cached `safe_updates`
/// throughput. Not a paper experiment — the engineering validation of
/// the hash-consed StateStore / VerdictCache layers, with the ≥ 10×
/// cached-re-analysis bound asserted.
fn state_store() -> StoreReport {
    use idar_solver::{
        analyze, analyze_with, AnalysisRequest, Budget, Method, SymmetryMode, VerdictCache,
    };
    use idar_workflow::manager::{FormManager, UnknownPolicy};

    banner("Engine check -- StateStore symmetry reduction + VerdictCache");

    // --- (1) symmetry reduction on the subset lattice -------------------
    let sym = workloads::subset_lattice(8);
    let limits = ExploreLimits {
        max_states: 1 << 20,
        ..ExploreLimits::default()
    };
    let reduced = Explorer::new(&sym.form, limits).with_threads(1).graph();
    let plain = Explorer::new(&sym.form, limits)
        .with_threads(1)
        .with_symmetry(SymmetryMode::Plain)
        .graph();
    assert!(reduced.stats.closed && plain.stats.closed);
    assert_eq!(reduced.state_count(), 256); // 2^8 subsets
    assert!(
        reduced.state_count() < plain.state_count(),
        "symmetry reduction must shrink the explored space \
         (reduced {} vs plain {})",
        reduced.state_count(),
        plain.state_count()
    );
    println!(
        "{:<26}{:>16}{:>16}{:>12}",
        "workload", "plain states", "reduced states", "factor"
    );
    println!(
        "{:<26}{:>16}{:>16}{:>12}",
        sym.name,
        plain.state_count(),
        reduced.state_count(),
        format!(
            "{:.0}x",
            plain.state_count() as f64 / reduced.state_count() as f64
        ),
    );

    // --- (2) cold vs cached re-analysis ---------------------------------
    let cw = workloads::subset_lattice(14);
    let budget = Budget {
        limits,
        force_method: Some(Method::BoundedExploration),
        ..Budget::default()
    };
    let request = AnalysisRequest::completability(cw.form.clone()).with_budget(budget);
    let t = Instant::now();
    let cold = analyze(&request);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.verdict, Verdict::Holds);

    let cache = VerdictCache::new();
    let first = analyze_with(&request, Some(&cache));
    assert_eq!(first.verdict, cold.verdict);
    // Average many hits so the measurement is stable on fast machines.
    let reps = 100;
    let t = Instant::now();
    for _ in 0..reps {
        let hit = analyze_with(&request, Some(&cache));
        assert_eq!(hit.verdict, cold.verdict);
    }
    let cached_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;
    assert!(
        cold_ms >= 10.0 * cached_ms,
        "cached re-analysis must be >= 10x faster than cold \
         (cold {cold_ms:.3} ms vs cached {cached_ms:.6} ms)"
    );
    println!(
        "cached re-analysis ({}): cold {:.2} ms, cached {:.4} ms -> {:.0}x",
        cw.name,
        cold_ms,
        cached_ms,
        cold_ms / cached_ms.max(1e-9)
    );

    // --- (3) manager throughput: cached safe_updates ---------------------
    let form = idar_core::leave::example_3_12();
    let oracle = Budget::with_limits(ExploreLimits {
        multiplicity_cap: Some(1),
        max_states: 20_000,
        ..ExploreLimits::small()
    });
    let mgr = FormManager::new(form, oracle, UnknownPolicy::Reject);
    let t = Instant::now();
    let safe_cold = mgr.safe_updates();
    let manager_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let safe_warm = mgr.safe_updates();
    let manager_warm_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(safe_cold, safe_warm);
    let stats = mgr.cache_stats();
    let recompute = mgr.recompute_stats();
    // With a retained session graph the warm sweep is answered by graph
    // lookups or resumed frontier extensions and never probes the shared
    // cache; without one (method or memory budget disabled it) the warm
    // sweep must hit the cache.
    assert!(
        stats.hits > 0 || recompute.graph_hits + recompute.frontier_extends > 0,
        "warm safe_updates must be answered from the cache or the session graph"
    );
    println!(
        "manager safe_updates ({} candidates): cold {:.2} ms, warm {:.3} ms \
         -> {:.0}x, cache hit rate {:.2}, warm graph answers {}",
        safe_cold.len(),
        manager_cold_ms,
        manager_warm_ms,
        manager_cold_ms / manager_warm_ms.max(1e-9),
        stats.hit_rate(),
        recompute.graph_hits + recompute.frontier_extends,
    );
    println!("(the >= 10x cached-re-analysis bound is asserted above; the plain");
    println!("column counts ordered trees -- what exploration would visit without");
    println!("the canonical-fingerprint quotient)");

    StoreReport {
        symmetry_workload: sym.name,
        plain_states: plain.state_count(),
        reduced_states: reduced.state_count(),
        cache_workload: cw.name,
        cold_ms,
        cached_ms,
        manager_cold_ms,
        manager_warm_ms,
        manager_hit_rate: stats.hit_rate(),
    }
}

/// One named-corpus row of the `scenarios` section.
struct ScenarioRow {
    name: String,
    completable: bool,
    semisound: bool,
    wall_ms: f64,
}

/// One chain-depth scaling row of the `scenarios` section.
struct ChainRow {
    depth: usize,
    states: usize,
    wall_ms: f64,
}

/// The `scenarios` report: named-corpus verdict pins and approval-chain
/// depth scaling. Written to `BENCH_10.json`.
struct ScenarioReport {
    named: Vec<ScenarioRow>,
    chain_scaling: Vec<ChainRow>,
}

impl ScenarioReport {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "named",
                Json::Arr(
                    self.named
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::Str(r.name.clone())),
                                ("completable", Json::Bool(r.completable)),
                                ("semisound", Json::Bool(r.semisound)),
                                ("wall_ms", Json::Num(r.wall_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "chain_scaling",
                Json::Arr(
                    self.chain_scaling
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("depth", Json::Int(r.depth as u64)),
                                ("states", Json::Int(r.states as u64)),
                                ("wall_ms", Json::Num(r.wall_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The scenario corpus: the six named approval-chain scenarios with
/// their reasoned verdict pins (asserted — a drift fails the run), plus
/// completability wall-times on clean approval chains up to depth 12.
/// Not a paper experiment — the realistic-workload layer the differential
/// fuzz harness drives; this section archives its perf trajectory.
fn scenarios() -> ScenarioReport {
    banner("Scenario corpus -- named approval chains + depth scaling");
    let limits = ExploreLimits {
        max_states: 120_000,
        max_state_size: 64,
        max_depth: usize::MAX,
        multiplicity_cap: Some(1),
    };

    println!(
        "{:<20}{:>12}{:>12}{:>12}",
        "scenario", "compl", "semisound", "time"
    );
    let mut named = Vec::new();
    for n in idar_gen::named_scenarios() {
        let s = &n.scenario;
        let t = Instant::now();
        let c = completability(&s.form, &CompletabilityOptions::with_limits(limits));
        let ss = semisoundness(
            &s.form,
            &SemisoundnessOptions {
                limits,
                ..Default::default()
            },
        );
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            c.verdict,
            verdict_of(n.expected.completable),
            "{}: completability pin",
            s.name
        );
        assert_eq!(
            ss.verdict,
            verdict_of(n.expected.semisound),
            "{}: semi-soundness pin",
            s.name
        );
        println!(
            "{:<20}{:>12}{:>12}{:>12}",
            s.name,
            c.verdict.to_string(),
            ss.verdict.to_string(),
            format!("{wall_ms:.2}ms")
        );
        named.push(ScenarioRow {
            name: s.name.clone(),
            completable: n.expected.completable,
            semisound: n.expected.semisound,
            wall_ms,
        });
    }

    println!(
        "{:<26}{:>10}{:>12}{:>14}",
        "workload", "depth", "states", "time"
    );
    let mut chain_scaling = Vec::new();
    for depth in [4usize, 8, 10, 12] {
        let w = workloads::approval_chain(depth, 2, 3);
        let t = Instant::now();
        let r = completability(&w.form, &CompletabilityOptions::with_limits(limits));
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(r.verdict, Verdict::Holds, "{}", w.name);
        // Minimal witness: one submission plus one signature per level.
        assert_eq!(r.witness_run.as_ref().unwrap().len(), depth + 1);
        println!(
            "{:<26}{:>10}{:>12}{:>14}",
            w.name,
            depth,
            r.stats.states,
            format!("{wall_ms:.2}ms")
        );
        chain_scaling.push(ChainRow {
            depth,
            states: r.stats.states,
            wall_ms,
        });
    }
    println!("(pins asserted: the six named scenarios must keep their reasoned");
    println!("verdicts; clean chains stay completable with a depth+1 witness)");

    ScenarioReport {
        named,
        chain_scaling,
    }
}

/// Cor 4.2 and Sec 4.2 — the two fragment transformations.
fn transformations() {
    banner("Cor 4.2 / Sec 4.2 -- fragment transformations preserve the problems");
    // Deletion elimination on a form needing deletions.
    let schema = Arc::new(Schema::parse("a, b").unwrap());
    let mut rules = idar_core::AccessRules::new(&schema);
    rules.set_both(
        schema.resolve("a").unwrap(),
        idar_core::Formula::False,
        idar_core::Formula::parse("b").unwrap(),
    );
    rules.set(
        idar_core::Right::Add,
        schema.resolve("b").unwrap(),
        idar_core::Formula::parse("!b").unwrap(),
    );
    let init = Instance::parse(schema.clone(), "a").unwrap();
    let g = idar_core::GuardedForm::new(
        schema,
        rules,
        init,
        idar_core::Formula::parse("b & !a").unwrap(),
    );
    let before = completability(&g, &CompletabilityOptions::default()).verdict;
    let g2 = idar_reductions::deletion_elimination::reduce(&g).unwrap();
    let after = completability(&g2, &CompletabilityOptions::default()).verdict;
    println!(
        "Cor 4.2: depth {} -> {}, deletions eliminated, completability {} -> {}",
        g.schema().depth(),
        g2.schema().depth(),
        before,
        after
    );
    assert_eq!(before, after);

    let g3 = idar_reductions::positive_completion::reduce(&g).unwrap();
    let after3 = completability(&g3, &CompletabilityOptions::default()).verdict;
    println!(
        "Sec 4.2: completion `{}` -> `{}`, completability {} -> {}",
        g.completion(),
        g3.completion(),
        before,
        after3
    );
    assert_eq!(before, after3);
}

/// One workload row of the `incremental` section.
struct IncrementalRow {
    workload: String,
    retained_states: usize,
    cold_ms: f64,
    warm_ms: f64,
    graph_hit_rate: f64,
}

/// The `incremental` report: post-edit `safe_updates` answered by a
/// retained session graph vs an always-cold re-solve.
struct IncrementalReport {
    rows: Vec<IncrementalRow>,
    /// A violated warm-vs-cold gate, reported *after* the JSON is
    /// written so the regression that tripped it is still archived.
    gate_violation: Option<String>,
}

impl IncrementalReport {
    fn to_json(&self) -> Json {
        Json::obj([(
            "workloads",
            Json::Arr(
                self.rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("workload", Json::Str(r.workload.clone())),
                            ("retained_states", Json::Int(r.retained_states as u64)),
                            ("cold_ms", Json::Num(r.cold_ms)),
                            ("warm_ms", Json::Num(r.warm_ms)),
                            ("speedup", Json::Num(r.cold_ms / r.warm_ms.max(1e-9))),
                            ("graph_hit_rate", Json::Num(r.graph_hit_rate)),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

/// Incremental re-analysis: after one edit to a live form session, how
/// fast is the next `safe_updates` sweep when the manager kept its
/// explored state graph vs when every candidate is re-solved cold?
///
/// Both managers run the same budget (bounded exploration forced so the
/// deletion-free approval chain exercises the session path rather than
/// positive saturation) and fresh, unshared verdict caches — the cold
/// manager's graph is disabled via a zero memory budget, so its sweep is
/// the pre-session cost a stateless deployment pays on every edit. The
/// ≥ 10× warm-vs-cold bound is the section's deferred perf gate.
fn incremental() -> IncrementalReport {
    use idar_solver::{Budget, Method, VerdictCache};
    use idar_workflow::manager::{FormManager, UnknownPolicy};

    banner("Incremental re-analysis -- retained session graph vs cold re-solve");
    println!(
        "{:<26}{:>10}{:>12}{:>12}{:>10}{:>10}",
        "workload", "states", "cold", "warm", "speedup", "gh-rate"
    );

    let limits = ExploreLimits {
        max_states: 1 << 20,
        max_state_size: 64,
        max_depth: usize::MAX,
        multiplicity_cap: Some(1),
    };
    let mut budget = Budget::with_limits(limits);
    budget.force_method = Some(Method::BoundedExploration);

    let mut rows = Vec::new();
    let mut gate_violation = None;
    for w in [
        workloads::approval_chain(8, 2, 3),
        workloads::subset_lattice(12),
    ] {
        // Warm: one manager that retains its session graph across the
        // edit. The first sweep (untimed) builds the graph and picks the
        // edit; the timed sweeps after `submit` are pure graph queries.
        let mut warm = FormManager::new(w.form.clone(), budget.clone(), UnknownPolicy::Reject)
            .with_cache(Arc::new(VerdictCache::new()));
        let edit = *warm
            .safe_updates()
            .first()
            .expect("workload has a safe first edit");
        warm.submit(edit).expect("safe edit accepted");
        let warm_safe = warm.safe_updates();
        let reps = 50;
        let t = Instant::now();
        for _ in 0..reps {
            assert_eq!(
                warm.safe_updates(),
                warm_safe,
                "{}: warm sweep unstable",
                w.name
            );
        }
        let warm_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let stats = warm.recompute_stats();
        assert!(
            stats.graph_hits > 0,
            "{}: the warm sweep must be answered from the retained graph",
            w.name
        );
        let retained = warm.retained_states().expect("session graph retained");

        // Cold: fresh manager, fresh cache, graph disabled — take the
        // best of several runs so the gate compares against the cold
        // path's *fastest* showing.
        let mut cold_ms = f64::INFINITY;
        for _ in 0..3 {
            let mut cold = FormManager::new(w.form.clone(), budget.clone(), UnknownPolicy::Reject)
                .with_cache(Arc::new(VerdictCache::new()))
                .with_max_retained_states(0);
            cold.submit(edit).expect("safe edit accepted");
            let t = Instant::now();
            let cold_safe = cold.safe_updates();
            cold_ms = cold_ms.min(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                cold_safe, warm_safe,
                "{}: warm and cold sweeps diverge",
                w.name
            );
        }

        let row = IncrementalRow {
            workload: w.name.clone(),
            retained_states: retained,
            cold_ms,
            warm_ms,
            graph_hit_rate: stats.graph_hit_rate(),
        };
        println!(
            "{:<26}{:>10}{:>12}{:>12}{:>10}{:>10}",
            row.workload,
            row.retained_states,
            format!("{:.3}ms", row.cold_ms),
            format!("{:.4}ms", row.warm_ms),
            format!("{:.0}x", row.cold_ms / row.warm_ms.max(1e-9)),
            format!("{:.2}", row.graph_hit_rate),
        );
        if row.cold_ms < 10.0 * row.warm_ms && gate_violation.is_none() {
            gate_violation = Some(format!(
                "{}: warm post-edit safe_updates must be >= 10x faster than cold \
                 (cold {:.3} ms vs warm {:.4} ms)",
                row.workload, row.cold_ms, row.warm_ms
            ));
        }
        rows.push(row);
    }
    println!("(gate: warm >= 10x cold on both workloads; warm sweeps are graph");
    println!("lookups on the session retained across the edit, cold sweeps re-solve");
    println!("every candidate from scratch)");
    IncrementalReport {
        rows,
        gate_violation,
    }
}

/// One corpus-slice row of the `static` section.
struct StaticRow {
    corpus: String,
    /// `(form, problem)` cases screened — two problems per form.
    cases: usize,
    /// Cases the screener decided conclusively (zero states explored).
    decided: usize,
    /// Per-form screener wall-time p99 (one `screen` call answers both
    /// problems at once).
    screen_p99_ms: f64,
    /// Cold-exploration wall-time p50 over the *decided* cases — the
    /// work the screener replaced (screen bypassed, same limits).
    explore_p50_ms: f64,
    /// Dead rules flagged across the slice.
    dead_rules: usize,
    /// Bounded-exploration state totals over the forms with dead rules,
    /// unpruned vs pruned. Equal by construction (a dead rule never
    /// fires at any reachable state) — archived as the soundness pin.
    unpruned_states: u64,
    pruned_states: u64,
}

/// The `static` report: how much of the scenario corpus the
/// pre-exploration screener decides outright, and at what latency
/// relative to the exploration it replaces.
struct StaticReport {
    rows: Vec<StaticRow>,
    /// Decided fraction over the whole corpus (the ≥ 0.30 gate).
    decided_rate: f64,
    /// A violated gate, reported *after* the JSON is written.
    gate_violation: Option<String>,
}

impl StaticReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("decided_rate", Json::Num(self.decided_rate)),
            (
                "corpora",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("corpus", Json::Str(r.corpus.clone())),
                                ("cases", Json::Int(r.cases as u64)),
                                ("decided", Json::Int(r.decided as u64)),
                                ("screen_p99_ms", Json::Num(r.screen_p99_ms)),
                                ("explore_p50_ms", Json::Num(r.explore_p50_ms)),
                                ("dead_rules", Json::Int(r.dead_rules as u64)),
                                ("unpruned_states", Json::Int(r.unpruned_states)),
                                ("pruned_states", Json::Int(r.pruned_states)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The static screener over the named corpus plus 100 lightweight
/// recipe samples: decided-before-exploration rate (≥ 30% gate),
/// screener p99 vs the cold-exploration p50 it replaces (the screener
/// must stay under it), screen-vs-exploration verdict agreement on
/// every decided case, and pruned-vs-unpruned state-count equality on
/// every form with dead rules.
fn static_screen() -> StaticReport {
    use idar_core::GuardedForm;
    use idar_gen::scenario::{named_scenarios, ScenarioRecipe};
    use idar_solver::{analyze, prune, screen, AnalysisKind, AnalysisRequest, Budget, Method};

    banner("Static screener -- pre-exploration analysis vs cold exploration");
    println!(
        "{:<14}{:>8}{:>9}{:>14}{:>15}{:>7}{:>10}",
        "corpus", "cases", "decided", "screen-p99", "explore-p50", "dead", "states"
    );

    let limits = ExploreLimits {
        max_states: 60_000,
        max_state_size: 64,
        max_depth: usize::MAX,
        multiplicity_cap: Some(1),
    };
    let mut bypass = Budget::with_limits(limits);
    bypass.skip_screen = true;

    fn percentile(xs: &mut [f64], p: f64) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.sort_by(f64::total_cmp);
        let ix = ((xs.len() - 1) as f64 * p / 100.0).round() as usize;
        xs[ix]
    }

    let named: Vec<(String, GuardedForm)> = named_scenarios()
        .into_iter()
        .map(|n| (n.scenario.name.clone(), n.scenario.form))
        .collect();
    let recipe = ScenarioRecipe::lightweight();
    let light: Vec<(String, GuardedForm)> = (0..100u64)
        .map(|seed| {
            let s = recipe.sample(seed).build("lightweight");
            (format!("lightweight/{seed}"), s.form)
        })
        .collect();
    // Deep clean chains, where cold exploration pays for a state space
    // that grows with depth while the greedy chase stays linear — the
    // slice the screener-vs-replaced-exploration latency gate runs on.
    let scaled: Vec<(String, GuardedForm)> = [6usize, 8, 10, 12]
        .iter()
        .map(|&d| {
            use idar_gen::{ChainSpec, ScenarioSpec};
            let s = ScenarioSpec::unconstrained(ChainSpec::simple(d, 2, 3)).build("scaled");
            (format!("chain-depth-{d}"), s.form)
        })
        .collect();

    let mut rows = Vec::new();
    let mut gate_violation: Option<String> = None;
    let mut total_cases = 0usize;
    let mut total_decided = 0usize;
    for (corpus, forms) in [("named", named), ("lightweight", light), ("scaled", scaled)] {
        let mut screen_ms = Vec::new();
        let mut explore_ms = Vec::new();
        let mut cases = 0usize;
        let mut decided = 0usize;
        let mut dead_rules = 0usize;
        let mut unpruned_states = 0u64;
        let mut pruned_states = 0u64;
        for (name, form) in &forms {
            let t = Instant::now();
            let r = screen(form);
            screen_ms.push(t.elapsed().as_secs_f64() * 1e3);
            for (kind, outcome) in [
                (AnalysisKind::Completability, &r.completability),
                (AnalysisKind::Semisoundness, &r.semisoundness),
            ] {
                cases += 1;
                let Some(v) = outcome.verdict() else { continue };
                decided += 1;
                let t = Instant::now();
                let report =
                    analyze(&AnalysisRequest::new(form.clone(), kind).with_budget(bypass.clone()));
                explore_ms.push(t.elapsed().as_secs_f64() * 1e3);
                if report.verdict != Verdict::Unknown
                    && report.verdict != v
                    && gate_violation.is_none()
                {
                    gate_violation = Some(format!(
                        "{corpus}/{name}/{kind}: screener verdict {v} but exploration says {}",
                        report.verdict
                    ));
                }
            }
            if !r.dead_rules.is_empty() {
                dead_rules += r.dead_rules.len();
                let pruned_form = prune(form, &r.dead_rules);
                let mut forced = bypass.clone();
                forced.force_method = Some(Method::BoundedExploration);
                let a = analyze(
                    &AnalysisRequest::new(form.clone(), AnalysisKind::Completability)
                        .with_budget(forced.clone()),
                );
                let b = analyze(
                    &AnalysisRequest::new(pruned_form, AnalysisKind::Completability)
                        .with_budget(forced),
                );
                unpruned_states += a.stats.states as u64;
                pruned_states += b.stats.states as u64;
            }
        }
        let row = StaticRow {
            corpus: corpus.to_string(),
            cases,
            decided,
            screen_p99_ms: percentile(&mut screen_ms, 99.0),
            explore_p50_ms: percentile(&mut explore_ms, 50.0),
            dead_rules,
            unpruned_states,
            pruned_states,
        };
        println!(
            "{:<14}{:>8}{:>9}{:>14}{:>15}{:>7}{:>10}",
            row.corpus,
            row.cases,
            row.decided,
            format!("{:.4}ms", row.screen_p99_ms),
            format!("{:.4}ms", row.explore_p50_ms),
            row.dead_rules,
            format!("{}={}", row.unpruned_states, row.pruned_states),
        );
        if row.unpruned_states != row.pruned_states && gate_violation.is_none() {
            gate_violation = Some(format!(
                "{corpus}: pruning dead rules changed the explored state count \
                 ({} unpruned vs {} pruned)",
                row.unpruned_states, row.pruned_states
            ));
        }
        // Two latency gates: screening must be negligible overhead on
        // every slice (corpus forms are small; 2 ms is generous), and on
        // the scaled slice — where exploration actually costs something
        // — its p99 must sit strictly under the exploration p50 it
        // replaces. (On the tiny slices exploration is itself
        // microseconds, so a relative gate there would compare noise.)
        if row.screen_p99_ms > 2.0 && gate_violation.is_none() {
            gate_violation = Some(format!(
                "{corpus}: screener p99 {:.4} ms exceeds the 2 ms overhead bound",
                row.screen_p99_ms
            ));
        }
        if corpus == "scaled"
            && row.decided > 0
            && row.screen_p99_ms > row.explore_p50_ms
            && gate_violation.is_none()
        {
            gate_violation = Some(format!(
                "{corpus}: screener p99 {:.4} ms exceeds the cold-exploration p50 \
                 {:.4} ms it replaces",
                row.screen_p99_ms, row.explore_p50_ms
            ));
        }
        total_cases += cases;
        total_decided += decided;
        rows.push(row);
    }
    let decided_rate = total_decided as f64 / total_cases.max(1) as f64;
    println!(
        "decided statically: {total_decided}/{total_cases} cases ({:.0}%)",
        decided_rate * 100.0
    );
    println!("(gates: decided rate >= 30%, screener p99 <= 2 ms everywhere and under");
    println!("the scaled slice's explore p50, pruned == unpruned state counts,");
    println!("screen-vs-exploration verdict agreement on every decided case)");
    if decided_rate < 0.30 && gate_violation.is_none() {
        gate_violation = Some(format!(
            "decided rate {decided_rate:.2} fell below the 0.30 floor"
        ));
    }
    StaticReport {
        rows,
        decided_rate,
        gate_violation,
    }
}

/// One traffic-mix row of the `service` section.
struct ServiceRow {
    mix: String,
    sent: u64,
    ok: u64,
    retried_429: u64,
    errors: u64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    accepted: u64,
    completed: u64,
    shed: u64,
    cache_hit_rate: f64,
    graph_hit_rate: f64,
}

/// The `service` report: idar-server under the seeded load mixes.
struct ServiceReport {
    rows: Vec<ServiceRow>,
    /// A violated service gate, reported *after* the JSON is written so
    /// the regression that tripped it is still archived.
    gate_violation: Option<String>,
}

impl ServiceReport {
    fn to_json(&self) -> Json {
        Json::obj([(
            "mixes",
            Json::Arr(
                self.rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("mix", Json::Str(r.mix.clone())),
                            ("sent", Json::Int(r.sent)),
                            ("ok", Json::Int(r.ok)),
                            ("retried_429", Json::Int(r.retried_429)),
                            ("errors", Json::Int(r.errors)),
                            ("throughput_rps", Json::Num(r.throughput_rps)),
                            ("p50_ms", Json::Num(r.p50_ms)),
                            ("p99_ms", Json::Num(r.p99_ms)),
                            ("accepted", Json::Int(r.accepted)),
                            ("completed", Json::Int(r.completed)),
                            ("shed", Json::Int(r.shed)),
                            ("cache_hit_rate", Json::Num(r.cache_hit_rate)),
                            ("graph_hit_rate", Json::Num(r.graph_hit_rate)),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

/// The analysis service under load: boot a fresh `idar-server` per mix,
/// drive the seeded generator against it, and record throughput and
/// latency percentiles alongside the server's own admission counters
/// and session re-analysis provenance.
///
/// The edit-burst mix runs longer sessions with fewer users, so most of
/// its operations are post-edit queries against an already-built session
/// graph — the traffic shape the incremental layer retains graphs for.
///
/// Four gates (deferred like the speedup gate): zero request errors
/// (every response 2xx or an absorbed 429), a clean drain — `accepted ==
/// completed`, i.e. no request is ever admitted and then dropped —
/// p99 ≤ 250 ms per mix, and warm engagement under edit-burst: at least
/// one session oracle call answered from the retained graph.
fn service() -> ServiceReport {
    use idar_bench::load::{self, LoadConfig, TrafficMix};
    use idar_server::{Server, ServerConfig};

    banner("Analysis service -- idar-server under seeded multi-tenant load");
    println!(
        "{:<14}{:>8}{:>8}{:>10}{:>12}{:>10}{:>10}{:>8}{:>9}",
        "mix", "sent", "ok", "retried", "rps", "p50", "p99", "shed", "gh-rate"
    );
    let mut rows = Vec::new();
    let mut gate_violation = None;
    for mix in [
        TrafficMix::Interactive,
        TrafficMix::Analysis,
        TrafficMix::EditBurst,
    ] {
        let handle = Server::start("127.0.0.1:0", ServerConfig::default()).expect("server start");
        let (users, requests_per_user) = if mix == TrafficMix::EditBurst {
            (6, 20)
        } else {
            (12, 10)
        };
        let cfg = LoadConfig {
            addr: handle.addr(),
            seed: 7,
            tenants: 4,
            users,
            requests_per_user,
            mix,
            zipf_s: 1.0,
            clients: 4,
            max_retries: 8,
        };
        let report = load::run(&cfg);
        let cache_hit_rate = handle.cache().stats().hit_rate();
        let finals = handle.shutdown();
        let row = ServiceRow {
            mix: mix.name().to_string(),
            sent: report.sent,
            ok: report.ok,
            retried_429: report.retried_429,
            errors: report.errors,
            throughput_rps: report.throughput_rps(),
            p50_ms: report.percentile_ms(50.0),
            p99_ms: report.percentile_ms(99.0),
            accepted: finals.accepted,
            completed: finals.completed,
            shed: finals.shed,
            cache_hit_rate,
            graph_hit_rate: finals.graph_hit_rate(),
        };
        println!(
            "{:<14}{:>8}{:>8}{:>10}{:>12}{:>10}{:>10}{:>8}{:>9}",
            row.mix,
            row.sent,
            row.ok,
            row.retried_429,
            format!("{:.0}/s", row.throughput_rps),
            format!("{:.1}ms", row.p50_ms),
            format!("{:.1}ms", row.p99_ms),
            row.shed,
            format!("{:.2}", row.graph_hit_rate),
        );
        if row.errors > 0 && gate_violation.is_none() {
            gate_violation = Some(format!(
                "{} mix: {} request(s) failed (non-2xx/429)",
                row.mix, row.errors
            ));
        }
        if row.accepted != row.completed && gate_violation.is_none() {
            gate_violation = Some(format!(
                "{} mix: drain violated — accepted {} but completed {}",
                row.mix, row.accepted, row.completed
            ));
        }
        if row.p99_ms > 250.0 && gate_violation.is_none() {
            gate_violation = Some(format!(
                "{} mix: p99 {:.1} ms exceeds the 250 ms bound",
                row.mix, row.p99_ms
            ));
        }
        if mix == TrafficMix::EditBurst
            && finals.graph_hits + finals.frontier_extends == 0
            && gate_violation.is_none()
        {
            gate_violation = Some(format!(
                "{} mix: sessions never engaged the retained graph \
                 ({} oracle calls, all cold)",
                row.mix, finals.cold_solves
            ));
        }
        rows.push(row);
    }
    println!("(gates: zero errors, accepted == completed, p99 <= 250 ms per mix,");
    println!("and >= 1 warm-path session answer under edit-burst)");
    ServiceReport {
        rows,
        gate_violation,
    }
}

/// One run row of the `capacity` section.
struct CapacityRow {
    workload: String,
    /// `flat` (in-RAM store), `budgeted` (capacity engine under the
    /// arena budget), or `frontier_only` (capacity engine dropping
    /// closed layers).
    mode: &'static str,
    states: usize,
    closed: bool,
    wall_ms: f64,
    states_per_sec: f64,
    /// Net allocation high-water mark of the run (counting allocator).
    alloc_peak_bytes: usize,
    /// Spill-store counters; `None` for flat runs.
    spill: Option<idar_solver::SpillReport>,
}

/// The `capacity` report: the out-of-core state store at sizes past the
/// flat store's bench ceiling. Written to `BENCH_10.json`.
struct CapacityReport {
    budget_bytes: usize,
    rows: Vec<CapacityRow>,
    /// A violated capacity gate, reported *after* the JSON is written so
    /// the regression that tripped it is still archived.
    gate_violation: Option<String>,
}

impl CapacityReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("budget_bytes", Json::Int(self.budget_bytes as u64)),
            (
                "runs",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            let mut pairs = vec![
                                ("workload".to_string(), Json::Str(r.workload.clone())),
                                ("mode".to_string(), Json::Str(r.mode.into())),
                                ("states".to_string(), Json::Int(r.states as u64)),
                                ("closed".to_string(), Json::Bool(r.closed)),
                                ("wall_ms".to_string(), Json::Num(r.wall_ms)),
                                ("states_per_sec".to_string(), Json::Num(r.states_per_sec)),
                                (
                                    "alloc_peak_bytes".to_string(),
                                    Json::Int(r.alloc_peak_bytes as u64),
                                ),
                            ];
                            if let Some(s) = &r.spill {
                                pairs.push(("word_bytes".to_string(), Json::Int(s.word_bytes)));
                                pairs.push((
                                    "encoded_bytes".to_string(),
                                    Json::Int(s.encoded_bytes),
                                ));
                                pairs.push(("checkpoints".to_string(), Json::Int(s.checkpoints)));
                                pairs.push((
                                    "spilled_pages".to_string(),
                                    Json::Int(s.spilled_pages),
                                ));
                                pairs.push((
                                    "spilled_bytes".to_string(),
                                    Json::Int(s.spilled_bytes),
                                ));
                                pairs.push(("faults".to_string(), Json::Int(s.faults)));
                                pairs.push((
                                    "arena_peak_bytes".to_string(),
                                    Json::Int(s.arena_peak_bytes),
                                ));
                                pairs.push((
                                    "frontier_only".to_string(),
                                    Json::Bool(s.frontier_only),
                                ));
                            }
                            Json::Obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The out-of-core state store: delta-compressed records, the paged
/// spill arena, and frontier-only mode, at sizes past the flat store's
/// former n16/65k bench ceiling.
///
/// Three sub-experiments, all full-space enumerations (`goal` never
/// true, so the search closes and `SearchStats` are comparable):
///
/// 1. `subset_lattice(18)` flat vs budgeted — the **gated** comparison:
///    identical `SearchStats`, budgeted allocator peak ≤ 50% of flat,
///    budgeted states/sec within 2× of flat.
/// 2. `subset_lattice(20)` budgeted only — 1 048 576 states, 16× the old
///    ceiling; gated on closing under the budget (the flat run at this
///    size is exactly the footprint the hierarchy exists to avoid).
/// 3. `two_counter_monotone(9)` frontier-only — a deletion-free 4⁹-state
///    blow-up where closed layers are dropped entirely; gated on closing
///    with zero retained record bytes.
///
/// Memory is measured through the process-wide counting allocator
/// (resettable peak; `VmHWM` is monotone and lands in the `sections`
/// array instead), as a *net* high-water mark per run.
fn capacity(budget_bytes: usize) -> CapacityReport {
    use idar_solver::MemoryBudget;

    banner("Capacity -- out-of-core delta-compressed state store");
    println!("arena budget: {} KiB", budget_bytes / 1024);
    println!(
        "{:<26}{:>14}{:>10}{:>12}{:>12}{:>12}{:>10}",
        "workload", "mode", "states", "time", "st/s", "alloc-peak", "spilled"
    );
    let limits = ExploreLimits {
        max_states: 1 << 21,
        ..ExploreLimits::default()
    };
    let mut rows: Vec<CapacityRow> = Vec::new();
    let mut gate_violation: Option<String> = None;

    let mut push_row = |row: CapacityRow| {
        println!(
            "{:<26}{:>14}{:>10}{:>12}{:>12}{:>12}{:>10}",
            row.workload,
            row.mode,
            row.states,
            format!("{:.0}ms", row.wall_ms),
            format!("{:.0}k/s", row.states_per_sec / 1e3),
            format!("{}MB", row.alloc_peak_bytes >> 20),
            row.spill
                .as_ref()
                .map_or("-".to_string(), |s| format!("{}p", s.spilled_pages)),
        );
        rows.push(row);
    };

    // --- (1) flat vs budgeted at the largest in-RAM-comfortable size ----
    let w18 = workloads::subset_lattice(18);
    let flat_explorer = Explorer::new(&w18.form, limits).with_threads(1);
    let base = peak_alloc::reset_peak();
    let t = Instant::now();
    let flat = flat_explorer.find(|_| false);
    let flat_ms = t.elapsed().as_secs_f64() * 1e3;
    let flat_peak = peak_alloc::peak() - base;
    assert!(flat.stats.closed, "subset_lattice(18) must close flat");
    assert_eq!(flat.stats.states, 1 << 18);
    let flat_sps = flat.stats.states as f64 / (flat_ms / 1e3).max(1e-9);
    push_row(CapacityRow {
        workload: w18.name.clone(),
        mode: "flat",
        states: flat.stats.states,
        closed: flat.stats.closed,
        wall_ms: flat_ms,
        states_per_sec: flat_sps,
        alloc_peak_bytes: flat_peak,
        spill: None,
    });

    let budgeted_explorer =
        Explorer::new(&w18.form, limits).with_memory_budget(MemoryBudget::bytes(budget_bytes));
    let base = peak_alloc::reset_peak();
    let t = Instant::now();
    let (budgeted, spill18) = budgeted_explorer.find_spilled(|_| false);
    let budgeted_ms = t.elapsed().as_secs_f64() * 1e3;
    let budgeted_peak = peak_alloc::peak() - base;
    assert_eq!(
        budgeted.stats, flat.stats,
        "budgeted and flat runs must visit the same space"
    );
    assert!(
        spill18.encoded_bytes < spill18.word_bytes,
        "delta encoding must compress the canonical words \
         (encoded {} vs raw {})",
        spill18.encoded_bytes,
        spill18.word_bytes
    );
    let budgeted_sps = budgeted.stats.states as f64 / (budgeted_ms / 1e3).max(1e-9);
    if budgeted_peak * 2 > flat_peak && gate_violation.is_none() {
        gate_violation = Some(format!(
            "{}: budgeted allocator peak must be <= 50% of flat \
             (budgeted {} vs flat {} bytes)",
            w18.name, budgeted_peak, flat_peak
        ));
    }
    if budgeted_sps * 2.0 < flat_sps && gate_violation.is_none() {
        gate_violation = Some(format!(
            "{}: budgeted throughput must be within 2x of flat \
             (budgeted {budgeted_sps:.0} vs flat {flat_sps:.0} states/sec)",
            w18.name
        ));
    }
    push_row(CapacityRow {
        workload: w18.name,
        mode: "budgeted",
        states: budgeted.stats.states,
        closed: budgeted.stats.closed,
        wall_ms: budgeted_ms,
        states_per_sec: budgeted_sps,
        alloc_peak_bytes: budgeted_peak,
        spill: Some(spill18),
    });

    // --- (2) past the flat ceiling: 2^20 states under the same budget ---
    let w20 = workloads::subset_lattice(20);
    let explorer =
        Explorer::new(&w20.form, limits).with_memory_budget(MemoryBudget::bytes(budget_bytes));
    let base = peak_alloc::reset_peak();
    let t = Instant::now();
    let (big, spill20) = explorer.find_spilled(|_| false);
    let big_ms = t.elapsed().as_secs_f64() * 1e3;
    let big_peak = peak_alloc::peak() - base;
    if !(big.stats.closed && big.stats.states == 1 << 20) && gate_violation.is_none() {
        gate_violation = Some(format!(
            "{}: must close all 2^20 states under the budget \
             (closed {}, states {})",
            w20.name, big.stats.closed, big.stats.states
        ));
    }
    if spill20.spilled_pages == 0 && gate_violation.is_none() {
        gate_violation = Some(format!(
            "{}: the pager never engaged ({} encoded bytes fit the \
             {budget_bytes}-byte budget?)",
            w20.name, spill20.encoded_bytes
        ));
    }
    push_row(CapacityRow {
        workload: w20.name,
        mode: "budgeted",
        states: big.stats.states,
        closed: big.stats.closed,
        wall_ms: big_ms,
        states_per_sec: big.stats.states as f64 / (big_ms / 1e3).max(1e-9),
        alloc_peak_bytes: big_peak,
        spill: Some(spill20),
    });

    // --- (3) deletion-free blow-up in frontier-only mode ----------------
    let wtc = workloads::two_counter_monotone(9);
    let explorer =
        Explorer::new(&wtc.form, limits).with_memory_budget(MemoryBudget::bytes(budget_bytes));
    let base = peak_alloc::reset_peak();
    let t = Instant::now();
    let (fo, spill_fo) = explorer.find_frontier_only(|_| false);
    let fo_ms = t.elapsed().as_secs_f64() * 1e3;
    let fo_peak = peak_alloc::peak() - base;
    if !(fo.stats.closed && fo.stats.states == 1 << 18) && gate_violation.is_none() {
        gate_violation = Some(format!(
            "{}: frontier-only must close all 4^9 states \
             (closed {}, states {})",
            wtc.name, fo.stats.closed, fo.stats.states
        ));
    }
    assert_eq!(
        spill_fo.encoded_bytes, 0,
        "frontier-only mode must retain no record bytes"
    );
    push_row(CapacityRow {
        workload: wtc.name,
        mode: "frontier_only",
        states: fo.stats.states,
        closed: fo.stats.closed,
        wall_ms: fo_ms,
        states_per_sec: fo.stats.states as f64 / (fo_ms / 1e3).max(1e-9),
        alloc_peak_bytes: fo_peak,
        spill: Some(spill_fo),
    });

    println!("(gates: budgeted subset_lattice(18) closes with identical SearchStats,");
    println!("allocator peak <= 50% of flat and throughput within 2x; 2^20 and the");
    println!("deletion-free 4^9 blow-up close under the same budget)");
    CapacityReport {
        budget_bytes,
        rows,
        gate_violation,
    }
}
