//! `idar-load` — drive an `idar-server` with a deterministic, seeded
//! request mix and report throughput and latency percentiles.
//!
//! ```text
//! load --addr 127.0.0.1:8080 [--seed N] [--tenants N] [--users N]
//!      [--requests N] [--mix interactive|analysis|edit-burst] [--clients N]
//! load --smoke [--seed N]
//! ```
//!
//! `--smoke` is the CI entry point: it boots an in-process server with a
//! deliberately tiny admission queue, runs the same seeded burst twice
//! against *fresh* servers, and exits non-zero unless
//!
//! * every response across both runs was 2xx or 429 (nothing 5xx, no
//!   transport errors),
//! * the per-`(user, seq)` verdict vectors of the two runs are
//!   **identical** (verdict determinism under concurrency + shedding),
//! * both shutdowns drained cleanly (`accepted == completed`).

use idar_bench::load::{run, LoadConfig, TrafficMix};
use idar_server::{Server, ServerConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let seed: u64 = get("--seed").and_then(|s| s.parse().ok()).unwrap_or(7);

    if args.iter().any(|a| a == "--smoke") {
        return smoke(seed);
    }

    let Some(addr) = get("--addr").and_then(|a| a.parse().ok()) else {
        eprintln!("usage: load --addr HOST:PORT [--seed N] [--tenants N] [--users N] [--requests N] [--mix interactive|analysis|edit-burst] [--clients N]");
        eprintln!("       load --smoke [--seed N]");
        return ExitCode::from(2);
    };
    let mix = match get("--mix").as_deref() {
        Some("analysis") => TrafficMix::Analysis,
        Some("edit-burst") => TrafficMix::EditBurst,
        _ => TrafficMix::Interactive,
    };
    let cfg = LoadConfig {
        addr,
        seed,
        tenants: get("--tenants").and_then(|s| s.parse().ok()).unwrap_or(4),
        users: get("--users").and_then(|s| s.parse().ok()).unwrap_or(16),
        requests_per_user: get("--requests").and_then(|s| s.parse().ok()).unwrap_or(10),
        mix,
        zipf_s: 1.0,
        clients: get("--clients").and_then(|s| s.parse().ok()).unwrap_or(4),
        max_retries: 8,
    };
    let report = run(&cfg);
    println!(
        "mix={} sent={} ok={} retried_429={} errors={} throughput={:.1} rps p50={:.2} ms p99={:.2} ms",
        cfg.mix.name(),
        report.sent,
        report.ok,
        report.retried_429,
        report.errors,
        report.throughput_rps(),
        report.percentile_ms(50.0),
        report.percentile_ms(99.0),
    );
    if report.errors > 0 {
        eprintln!("errors observed: statuses {:?}", report.bad_statuses);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// One smoke iteration: fresh server (tiny queue so shedding actually
/// happens), seeded burst, graceful shutdown. Returns the run report and
/// the final server counters.
fn smoke_once(seed: u64) -> (idar_bench::load::LoadReport, idar_server::MetricsSnapshot) {
    let config = ServerConfig {
        queue_capacity: 2,
        ..ServerConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", config).expect("server start");
    let cfg = LoadConfig::smoke(handle.addr(), seed);
    let report = run(&cfg);
    let finals = handle.shutdown();
    (report, finals)
}

fn smoke(seed: u64) -> ExitCode {
    let mut failed = false;
    let (a, fa) = smoke_once(seed);
    let (b, fb) = smoke_once(seed);
    for (name, report, finals) in [("run-a", &a, &fa), ("run-b", &b, &fb)] {
        println!(
            "{name}: sent={} ok={} retried_429={} errors={} accepted={} completed={} shed={}",
            report.sent,
            report.ok,
            report.retried_429,
            report.errors,
            finals.accepted,
            finals.completed,
            finals.shed,
        );
        if report.errors > 0 {
            eprintln!(
                "{name}: non-2xx/429 statuses observed: {:?}",
                report.bad_statuses
            );
            failed = true;
        }
        if finals.accepted != finals.completed {
            eprintln!(
                "{name}: drain violated — accepted {} but completed {}",
                finals.accepted, finals.completed
            );
            failed = true;
        }
    }
    if a.verdicts != b.verdicts {
        let diffs: Vec<_> = a
            .verdicts
            .iter()
            .zip(b.verdicts.iter())
            .filter(|(x, y)| x != y)
            .take(5)
            .collect();
        eprintln!("verdict vectors differ between identical runs: {diffs:?}");
        failed = true;
    } else {
        println!(
            "verdict determinism: {} (user, seq) verdicts identical across runs",
            a.verdicts.len()
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("smoke ok");
        ExitCode::SUCCESS
    }
}
