//! # idar-reductions
//!
//! Every reduction in the paper, as an executable compiler between problem
//! representations, each validated against an independent baseline solver:
//!
//! | module | paper | maps |
//! |---|---|---|
//! | [`sat_to_completability`] | Thm 5.1 | SAT → completability, `F(A+, φ−, 1)` |
//! | [`sat_to_satisfiability`] | Cor 4.5 | SAT → formula satisfiability |
//! | [`qsat_to_satisfiability`] | Cor 4.5 | QSAT → formula satisfiability |
//! | [`sat_to_non_semisoundness`] | Thm 5.6 | SAT → ¬semi-soundness, `F(A+, φ+, 1)` |
//! | [`qsat_to_semisoundness`] | Thm 5.3 | QSAT_2k → ¬semi-soundness, `F(A+, φ−, k)` |
//! | [`deadlock_to_completability`] | Thm 4.6 | reachable deadlock → completability, `F(A−, φ−, 1)` |
//! | [`completability_to_semisoundness`] | Cor 4.7 | completability → semi-soundness (reset/build) |
//! | [`tcm_to_completability`] | Thm 4.1 | two-counter machine → guarded form, depth 2 |
//! | [`deletion_elimination`] | Cor 4.2 | deletions → `deleted`-marker additions |
//! | [`positive_completion`] | Sec 4.2 | φ− → φ+ via a `final` field |
//!
//! Where the paper's published rule listing contains typos or leaves a
//! protocol under-specified (Thm 4.1's re-execution guard, Cor. 4.7's
//! `∨`/`∧` swap), the repaired construction is documented in the module.

#![forbid(unsafe_code)]

pub mod completability_to_semisoundness;
pub mod deadlock_to_completability;
pub mod deletion_elimination;
pub mod positive_completion;
pub mod qsat_to_satisfiability;
pub mod qsat_to_semisoundness;
pub mod sat_to_completability;
pub mod sat_to_non_semisoundness;
pub mod sat_to_satisfiability;
pub mod tcm_to_completability;
