//! **Corollary 4.5, PSPACE-hardness direction**: QSAT reduces to formula
//! satisfiability (over unbounded-depth trees).
//!
//! The paper's example for `∃x ∀y ∃z : (x ∨ y ∧ ¬z)`:
//!
//! ```text
//! (¬ax/ay/az[¬(../../x) ∨ (../y) ∧ ¬z])      -- every leaf satisfies ψ′
//! ∧ (ax/x ↔ ¬(ax[¬x]))                        -- unique choice for x
//! ∧ (¬(ax[¬ay/y])) ∧ (¬(ax[¬ay[¬y]]))        -- both y values explored
//! ∧ (ax/ay[az/z ↔ ¬(az[¬z])])                 -- unique choice for z
//! ```
//!
//! Assignments nest as an `a`-chain (one level per variable, in prefix
//! order); a level's value is the presence of its variable child. The
//! generic compiler below handles any prenex QBF by flattening blocks to
//! one variable per level:
//!
//! * **∃ level** — at every chain node above it, the level's choice must
//!   exist and be consistent across duplicates (`a/v ↔ ¬a[¬v]`);
//! * **∀ level** — at every chain node above it, both values must be
//!   present (`a[v]` and `a[¬v]`);
//! * **matrix** — every full chain satisfies ψ′, with variables replaced
//!   by `../…/v` climbs.
//!
//! Models of the resulting formula are exactly (prunings of) winning
//! strategy trees, so satisfiability coincides with QBF truth.

use idar_core::{Formula, PathExpr};
use idar_logic::prop::{PropFormula, Var};
use idar_logic::qbf::{Qbf, Quantifier};
use std::collections::HashMap;

/// The chain label for prefix level `d` (0-based).
pub fn level_label(d: usize) -> String {
    format!("a{d}")
}

/// The value label for prefix level `d`.
pub fn value_label(d: usize) -> String {
    format!("v{d}")
}

/// Compile a prenex QBF into a root-evaluated formula that is satisfiable
/// iff the QBF is true.
pub fn reduce(qbf: &Qbf) -> Formula {
    // Flatten blocks into single-variable levels, in prefix order.
    let mut levels: Vec<(Quantifier, Var)> = Vec::new();
    for (q, vars) in &qbf.blocks {
        for v in vars {
            levels.push((*q, *v));
        }
    }
    let level_of: HashMap<Var, usize> = levels
        .iter()
        .enumerate()
        .map(|(d, (_, v))| (*v, d))
        .collect();
    let n = levels.len();

    let mut conjuncts: Vec<Formula> = Vec::new();
    for (d, (q, _)) in levels.iter().enumerate() {
        let constraint = match q {
            Quantifier::Exists => {
                // a_d/v_d ↔ ¬(a_d[¬v_d])
                let picked = Formula::Path(PathExpr::Seq(
                    Box::new(PathExpr::Label(level_label(d))),
                    Box::new(PathExpr::Label(value_label(d))),
                ));
                let some_unpicked = Formula::Path(PathExpr::Filter(
                    Box::new(PathExpr::Label(level_label(d))),
                    Box::new(Formula::label(&value_label(d)).not()),
                ));
                picked.iff(some_unpicked.not())
            }
            Quantifier::ForAll => {
                // a_d[v_d] ∧ a_d[¬v_d]
                let with = Formula::Path(PathExpr::Filter(
                    Box::new(PathExpr::Label(level_label(d))),
                    Box::new(Formula::label(&value_label(d))),
                ));
                let without = Formula::Path(PathExpr::Filter(
                    Box::new(PathExpr::Label(level_label(d))),
                    Box::new(Formula::label(&value_label(d)).not()),
                ));
                with.and(without)
            }
        };
        conjuncts.push(at_every_chain_node(d, constraint));
    }

    // Matrix at every full chain: ¬(a0/…/a(n−1)[¬ψ′]).
    let psi = substitute(&qbf.matrix, &level_of, n);
    conjuncts.push(at_every_chain_node(n, psi));

    Formula::conj(conjuncts)
}

/// `¬(a0/…/a(depth−1)[¬body])` — `body` holds at *every* chain node of
/// the given depth (at the root itself for depth 0).
fn at_every_chain_node(depth: usize, body: Formula) -> Formula {
    if depth == 0 {
        return body;
    }
    let mut path = PathExpr::Filter(
        Box::new(PathExpr::Label(level_label(depth - 1))),
        Box::new(body.not()),
    );
    for d in (0..depth - 1).rev() {
        path = PathExpr::Seq(Box::new(PathExpr::Label(level_label(d))), Box::new(path));
    }
    Formula::Path(path).not()
}

/// ψ′: variables become `../…/v` climbs from a depth-`n` chain node.
fn substitute(matrix: &PropFormula, level_of: &HashMap<Var, usize>, n: usize) -> Formula {
    match matrix {
        PropFormula::Const(true) => Formula::True,
        PropFormula::Const(false) => Formula::False,
        PropFormula::Var(v) => {
            let d = level_of[v];
            // The value node hangs off the depth-(d+1) chain node `a_d`;
            // from depth n that is (n − d − 1) climbs.
            Formula::Path(PathExpr::ancestors_then(n - d - 1, &value_label(d)))
        }
        PropFormula::Not(g) => substitute(g, level_of, n).not(),
        PropFormula::And(a, b) => substitute(a, level_of, n).and(substitute(b, level_of, n)),
        PropFormula::Or(a, b) => substitute(a, level_of, n).or(substitute(b, level_of, n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_solver::satisfiability::{satisfiable, SatOptions, SatResult};

    fn check(qbf: &Qbf) {
        let f = reduce(qbf);
        let sat = satisfiable(&f, &SatOptions::default());
        assert_ne!(sat, SatResult::BudgetExhausted, "budget on {qbf}");
        assert_eq!(sat.is_sat(), qbf.eval(), "mismatch for {qbf} → {f}");
        // The CDCL-backed assumption expansion must agree with the
        // recursive baseline on the same instance.
        assert_eq!(qbf.solve_via_sat(), qbf.eval(), "2QBF expansion on {qbf}");
    }

    fn v(i: u32) -> PropFormula {
        PropFormula::var(i)
    }

    #[test]
    fn paper_example_is_satisfiable() {
        // ∃x ∀y ∃z : x ∨ (y ∧ ¬z) — true (pick x).
        let qbf = Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(0)]),
                (Quantifier::ForAll, vec![Var(1)]),
                (Quantifier::Exists, vec![Var(2)]),
            ],
            v(0).or(v(1).and(v(2).not())),
        );
        assert!(qbf.eval());
        check(&qbf);
    }

    #[test]
    fn single_quantifiers() {
        check(&Qbf::new(vec![(Quantifier::Exists, vec![Var(0)])], v(0)));
        check(&Qbf::new(
            vec![(Quantifier::Exists, vec![Var(0)])],
            v(0).and(v(0).not()),
        ));
        check(&Qbf::new(
            vec![(Quantifier::ForAll, vec![Var(0)])],
            v(0).or(v(0).not()),
        ));
        check(&Qbf::new(vec![(Quantifier::ForAll, vec![Var(0)])], v(0)));
    }

    #[test]
    fn forall_exists_dependencies() {
        // ∀x ∃y: x ↔ y — true (y copies x).
        let iff = (v(0).and(v(1))).or(v(0).not().and(v(1).not()));
        check(&Qbf::new(
            vec![
                (Quantifier::ForAll, vec![Var(0)]),
                (Quantifier::Exists, vec![Var(1)]),
            ],
            iff.clone(),
        ));
        // ∃y ∀x: x ↔ y — false (y fixed before x).
        let iff2 = (v(0).and(v(1))).or(v(0).not().and(v(1).not()));
        check(&Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(1)]),
                (Quantifier::ForAll, vec![Var(0)]),
            ],
            iff2,
        ));
    }

    #[test]
    fn random_small_qbfs_agree_with_baseline() {
        use idar_logic::gen::{random_prop, Rng, XorShift};
        let mut rng = XorShift::new(99);
        for seed in 0..20 {
            let nvars = 2 + rng.below(2); // 2..3 variables
            let mut blocks = Vec::new();
            for i in 0..nvars {
                let q = if rng.bool() {
                    Quantifier::Exists
                } else {
                    Quantifier::ForAll
                };
                blocks.push((q, vec![Var(i as u32)]));
            }
            let matrix = random_prop(seed * 7 + 1, nvars, 5);
            let qbf = Qbf::new(blocks, matrix);
            check(&qbf);
        }
    }
}
