//! **Corollary 4.2**: deletions can be compiled away — undecidability
//! holds "even if only additions and forms of depth 3 are considered".
//!
//! "(1) every deletion of an edge is replaced with the addition of an edge
//! under that edge that ends in a node with a special label, say
//! `deleted`, and (2) in all formulas we replace path expressions of the
//! form `l` with `l[¬deleted]`."
//!
//! Making the sketch executable requires three care points, all documented
//! here and enforced by the construction:
//!
//! * a node may only be *marked* deleted when it is a **live leaf** — its
//!   children (if any) are all marked — mirroring the original's
//!   leaf-only deletion;
//! * additions under a marked node must be blocked (`∧ ¬deleted` on every
//!   addition guard), otherwise dead stubs could grow live children;
//! * the original deletion guard `A(del, e)` is evaluated at the edge's
//!   *parent*, while the replacing `deleted`-marker addition is evaluated
//!   at the edge's *end node*; the guard is re-homed with
//!   [`Formula::at_parent`] (`..[·]`).
//!
//! The transformed form's reachable instances project onto the original's
//! via [`live_projection`] (drop marked subtrees), and completability is
//! preserved.

use idar_core::{
    AccessRules, Formula, GuardedForm, InstNodeId, Instance, PathExpr, Right, SchemaBuilder,
    SchemaNodeId,
};
use std::collections::HashMap;
use std::sync::Arc;

/// The tombstone label.
pub const DELETED: &str = "deleted";

/// Why a form cannot be transformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservedDeleted;

impl std::fmt::Display for ReservedDeleted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schema already uses the label `{DELETED}`")
    }
}
impl std::error::Error for ReservedDeleted {}

/// Rewrite a formula: every label step `l` becomes `l[¬deleted]`.
/// (`..` is untouched: ancestors of live nodes are always live.)
pub fn rewrite_formula(f: &Formula) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Path(p) => Formula::Path(rewrite_path(p)),
        Formula::Not(g) => Formula::Not(Box::new(rewrite_formula(g))),
        Formula::And(a, b) => {
            Formula::And(Box::new(rewrite_formula(a)), Box::new(rewrite_formula(b)))
        }
        Formula::Or(a, b) => {
            Formula::Or(Box::new(rewrite_formula(a)), Box::new(rewrite_formula(b)))
        }
    }
}

fn rewrite_path(p: &PathExpr) -> PathExpr {
    match p {
        PathExpr::Parent => PathExpr::Parent,
        PathExpr::Label(l) => PathExpr::Filter(
            Box::new(PathExpr::Label(l.clone())),
            Box::new(Formula::label(DELETED).not()),
        ),
        PathExpr::Seq(a, b) => PathExpr::Seq(Box::new(rewrite_path(a)), Box::new(rewrite_path(b))),
        PathExpr::Filter(a, f) => {
            PathExpr::Filter(Box::new(rewrite_path(a)), Box::new(rewrite_formula(f)))
        }
    }
}

/// Compile `G` into an addition-only guarded form of depth `depth(G) + 1`
/// with the same completability.
pub fn reduce(g: &GuardedForm) -> Result<GuardedForm, ReservedDeleted> {
    let schema = g.schema();
    for n in schema.node_ids() {
        if schema.label(n) == DELETED {
            return Err(ReservedDeleted);
        }
    }

    // Extended schema: original nodes (ids preserved by creation order),
    // plus a `deleted` child under every non-root original node.
    let mut b = SchemaBuilder::new();
    for old in schema.edge_ids() {
        let parent = schema.parent(old).expect("edge");
        let ne = b.child(parent, schema.label(old)).expect("same labels");
        debug_assert_eq!(ne, old);
    }
    let mut marker_of: HashMap<SchemaNodeId, SchemaNodeId> = HashMap::new();
    for old in schema.edge_ids() {
        let m = b.child(old, DELETED).expect("fresh label per node");
        marker_of.insert(old, m);
    }
    let new_schema = Arc::new(b.build());

    let not_deleted = Formula::label(DELETED).not();
    let mut rules = AccessRules::new(&new_schema);
    for old in schema.edge_ids() {
        // Original addition, blocked under marked parents.
        let add = rewrite_formula(g.rules().get(Right::Add, old)).and(not_deleted.clone());
        rules.set(Right::Add, old, add);

        // The tombstone addition replaces the deletion. Evaluated at the
        // end node of `old`, so the original guard is re-homed one level
        // up. Live-leaf check: every child label without an unmarked node.
        let live_leaf = Formula::conj(schema.children(old).iter().map(|&c| {
            Formula::Path(PathExpr::Filter(
                Box::new(PathExpr::Label(schema.label(c).to_string())),
                Box::new(not_deleted.clone()),
            ))
            .not()
        }));
        let guard = rewrite_formula(g.rules().get(Right::Del, old))
            .at_parent()
            .and(not_deleted.clone())
            .and(live_leaf);
        rules.set(Right::Add, marker_of[&old], guard);
        // No deletions anywhere (default false for Del; markers included).
    }

    // Initial instance: same shape over the new schema (ids preserved).
    let mut initial = Instance::empty(new_schema.clone());
    let mut node_map = HashMap::new();
    node_map.insert(InstNodeId::ROOT, InstNodeId::ROOT);
    for n in g.initial().live_nodes() {
        if n == InstNodeId::ROOT {
            continue;
        }
        let p = node_map[&g.initial().parent(n).expect("non-root")];
        let nn = initial
            .add_child(p, g.initial().schema_node(n))
            .expect("same schema ids");
        node_map.insert(n, nn);
    }

    let completion = rewrite_formula(g.completion());
    Ok(GuardedForm::new(new_schema, rules, initial, completion))
}

/// Project an instance of the transformed schema back onto the original:
/// drop every marked node (and its tombstone) and all tombstones.
pub fn live_projection(original_schema: &Arc<idar_core::Schema>, inst: &Instance) -> Instance {
    let mut out = Instance::empty(original_schema.clone());
    let mut map: HashMap<InstNodeId, InstNodeId> = HashMap::new();
    map.insert(InstNodeId::ROOT, InstNodeId::ROOT);
    for n in inst.live_nodes() {
        if n == InstNodeId::ROOT {
            continue;
        }
        if inst.label(n) == DELETED {
            continue;
        }
        // Marked ⇔ has a tombstone child.
        if inst.children_with_label(n, DELETED).next().is_some() {
            continue;
        }
        let p = inst.parent(n).expect("non-root");
        let Some(&np) = map.get(&p) else {
            continue; // parent was dropped: unreachable for live nodes
        };
        // Schema ids of originals are preserved by construction.
        let nn = out
            .add_child(np, inst.schema_node(n))
            .expect("original edge");
        map.insert(n, nn);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::Schema;
    use idar_solver::{completability, CompletabilityOptions, ExploreLimits, Verdict};

    fn form(
        schema: &str,
        rules: &[(&str, &str, &str)],
        initial: &str,
        completion: &str,
    ) -> GuardedForm {
        let schema = Arc::new(Schema::parse(schema).unwrap());
        let mut table = AccessRules::new(&schema);
        for (l, add, del) in rules {
            table.set_both(
                schema.resolve(l).unwrap(),
                Formula::parse(add).unwrap(),
                Formula::parse(del).unwrap(),
            );
        }
        let init = Instance::parse(schema.clone(), initial).unwrap();
        GuardedForm::new(schema, table, init, Formula::parse(completion).unwrap())
    }

    #[test]
    fn rewrite_examples() {
        let f = Formula::parse("a/p[!b | !e]").unwrap();
        assert_eq!(
            rewrite_formula(&f).to_string(),
            "a[!deleted]/p[!deleted][!b[!deleted] | !e[!deleted]]"
        );
        let g = Formula::parse("../s").unwrap();
        assert_eq!(rewrite_formula(&g).to_string(), "../s[!deleted]");
    }

    #[test]
    fn depth_increases_by_one_and_no_deletions() {
        let g = form("a, b", &[("a", "true", "true")], "", "a");
        let g2 = reduce(&g).unwrap();
        assert_eq!(g2.schema().depth(), g.schema().depth() + 1);
        // Every deletion guard is false.
        for e in g2.schema().edge_ids() {
            assert_eq!(g2.rules().get(Right::Del, e), &Formula::False);
        }
    }

    #[test]
    fn completability_preserved() {
        let cases = [
            // Needs a real deletion: φ = b ∧ ¬a with a initially present.
            (
                "a, b",
                vec![("a", "false", "b"), ("b", "!b", "false")],
                "a",
                "b & !a",
                Verdict::Holds,
            ),
            // Incompletable: a is frozen. (¬b add guard keeps the
            // transformed run space finite so `Fails` stays provable.)
            (
                "a, b",
                vec![("b", "!b", "false")],
                "a",
                "!a & b",
                Verdict::Fails,
            ),
            // Depth 2 with deletion of an inner leaf: p is addable only
            // before submission and deletable only after, so the one
            // completing schedule is add a, add p, add s, delete p. The
            // pre-submission add guard also keeps the *transformed* form
            // finite (a marked p cannot be re-added once s exists).
            (
                "a(p), s",
                vec![
                    ("a", "!a", "false"),
                    ("a/p", "!p & ..[!s]", "..[s]"),
                    ("s", "a[p] & !s", "false"),
                ],
                "",
                "s & !a[p]",
                Verdict::Holds,
            ),
        ];
        for (schema, rules, initial, completion, expected) in cases {
            let g = form(schema, &rules, initial, completion);
            let limits = ExploreLimits {
                multiplicity_cap: Some(2),
                ..ExploreLimits::small()
            };
            let opts = CompletabilityOptions::with_limits(limits);
            let before = completability(&g, &opts).verdict;
            assert_eq!(before, expected, "original {completion}");
            let g2 = reduce(&g).unwrap();
            let after = completability(&g2, &opts).verdict;
            // The transformed space is finite in these cases (every add
            // guard is ¬-guarded), so verdicts must match exactly.
            assert_eq!(before, after, "transformed {completion}");
        }
    }

    #[test]
    fn marking_requires_live_leaf() {
        let g = form(
            "a(p)",
            &[("a", "!a", "true"), ("a/p", "!p", "true")],
            "a(p)",
            "!a",
        );
        let g2 = reduce(&g).unwrap();
        let root = InstNodeId::ROOT;
        let mut inst = g2.initial().clone();
        let a_node = inst.children_with_label(root, "a").next().unwrap();
        let p_node = inst.children_with_label(a_node, "p").next().unwrap();
        let a_marker = g2.schema().resolve("a/deleted").unwrap();
        let p_marker = g2.schema().resolve("a/p/deleted").unwrap();
        // Cannot mark `a` while its `p` child is live.
        assert!(!g2.is_allowed(
            &inst,
            &idar_core::Update::Add {
                parent: a_node,
                edge: a_marker
            }
        ));
        // Mark p first, then a becomes markable.
        g2.apply(
            &mut inst,
            &idar_core::Update::Add {
                parent: p_node,
                edge: p_marker,
            },
        )
        .unwrap();
        assert!(g2.is_allowed(
            &inst,
            &idar_core::Update::Add {
                parent: a_node,
                edge: a_marker
            }
        ));
        g2.apply(
            &mut inst,
            &idar_core::Update::Add {
                parent: a_node,
                edge: a_marker,
            },
        )
        .unwrap();
        // The completion ¬a — rewritten ¬a[¬deleted] — now holds.
        assert!(g2.is_complete(&inst));
        // No additions under the dead stub.
        let p_edge = g2.schema().resolve("a/p").unwrap();
        assert!(!g2.is_allowed(
            &inst,
            &idar_core::Update::Add {
                parent: a_node,
                edge: p_edge
            }
        ));
    }

    #[test]
    fn live_projection_roundtrip() {
        let g = form(
            "a(p), s",
            &[
                ("a", "!a", "false"),
                ("a/p", "!p", "true"),
                ("s", "true", "false"),
            ],
            "a(p)",
            "s",
        );
        let g2 = reduce(&g).unwrap();
        let root = InstNodeId::ROOT;
        let mut inst = g2.initial().clone();
        let a_node = inst.children_with_label(root, "a").next().unwrap();
        let p_node = inst.children_with_label(a_node, "p").next().unwrap();
        let p_marker = g2.schema().resolve("a/p/deleted").unwrap();
        g2.apply(
            &mut inst,
            &idar_core::Update::Add {
                parent: p_node,
                edge: p_marker,
            },
        )
        .unwrap();
        let proj = live_projection(g.schema(), &inst);
        // In the original semantics we deleted p: projection = a alone.
        assert_eq!(proj.iso_code(), "a");
    }

    #[test]
    fn reserved_label_rejected() {
        let g = form("deleted", &[], "", "true");
        assert_eq!(reduce(&g).unwrap_err(), ReservedDeleted);
    }
}
