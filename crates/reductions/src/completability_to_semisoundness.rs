//! **Corollary 4.7**: completability reduces to semi-soundness for
//! depth-1 guarded forms (the `reset`/`build` construction), giving
//! PSPACE-hardness of semi-soundness for `F(A−, φ−, 1)`.
//!
//! From a guarded form `G` we build `G'` with two extra root fields:
//!
//! * `reset` — "the instance is being torn down": while present, every
//!   original field is deletable and nothing is addable;
//! * `build` — "the initial instance is being rebuilt": addable once the
//!   teardown emptied the form, and deletable exactly when the instance is
//!   `can(I₀)` again (tested by the characteristic formula χ, which is why
//!   this crate leans on [`idar_core::bisim::characteristic_formula`]).
//!
//! Net effect: `G'` can always return to (the canonical form of) its
//! initial instance, so *every* reachable instance of `G'` is completable
//! iff `G` is completable at all.
//!
//! **Documented paper repair**: the published rewriting "for additions the
//! formula ψ is transformed to `ψ ∨ ¬reset ∨ ¬build`" makes every addition
//! allowed whenever `reset` is absent (the disjunct `¬reset` is then
//! true), which breaks faithfulness. We use `ψ ∧ ¬reset ∧ ¬build` —
//! ordinary rules apply only outside the teardown/rebuild phases. The
//! deletion rewriting `ψ ∨ reset` is as printed.

use idar_core::bisim;
use idar_core::{AccessRules, Formula, GuardedForm, Right, SchemaBuilder, SchemaNodeId};
use std::sync::Arc;

/// The label of the teardown-phase marker.
pub const RESET: &str = "reset";
/// The label of the rebuild-phase marker.
pub const BUILD: &str = "build";

/// Why a form cannot be reduced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReduceError {
    /// The construction is stated (and sound) for depth-1 forms only.
    NotDepthOne(u32),
    /// The form already uses a reserved label.
    ReservedLabel(String),
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceError::NotDepthOne(d) => {
                write!(f, "Cor 4.7 construction requires depth 1, got {d}")
            }
            ReduceError::ReservedLabel(l) => write!(f, "schema already uses `{l}`"),
        }
    }
}
impl std::error::Error for ReduceError {}

/// Build `G'` from `G` per Cor. 4.7: `G'` is semi-sound iff `G` is
/// completable. Stays within `F(A−, φ−, 1)`.
pub fn reduce(g: &GuardedForm) -> Result<GuardedForm, ReduceError> {
    let schema = g.schema();
    if schema.depth() > 1 {
        return Err(ReduceError::NotDepthOne(schema.depth()));
    }
    for l in [RESET, BUILD] {
        if schema.child_by_label(SchemaNodeId::ROOT, l).is_some() {
            return Err(ReduceError::ReservedLabel(l.to_string()));
        }
    }

    // Extended schema: original root labels + reset + build.
    let mut b = SchemaBuilder::new();
    let original_edges: Vec<(SchemaNodeId, String)> = schema
        .children(SchemaNodeId::ROOT)
        .iter()
        .map(|&e| (e, schema.label(e).to_string()))
        .collect();
    let mut new_edge_of = std::collections::HashMap::new();
    for (old, label) in &original_edges {
        let ne = b.child(SchemaNodeId::ROOT, label).expect("labels distinct");
        new_edge_of.insert(*old, ne);
    }
    let reset_edge = b.child(SchemaNodeId::ROOT, RESET).expect("fresh");
    let build_edge = b.child(SchemaNodeId::ROOT, BUILD).expect("fresh");
    let new_schema = Arc::new(b.build());

    let not_reset = Formula::label(RESET).not();
    let not_build = Formula::label(BUILD).not();
    let phase_free = not_reset.clone().and(not_build.clone());

    // The canonical initial instance: which labels must the rebuild
    // produce? (Depth 1: can(I₀) ⇔ the set of present labels.)
    let canonical_initial = bisim::canonical(g.initial());
    let initial_labels: std::collections::HashSet<String> = canonical_initial
        .children(idar_core::InstNodeId::ROOT)
        .iter()
        .map(|&c| canonical_initial.label(c).to_string())
        .collect();

    let mut rules = AccessRules::new(&new_schema);
    for (old, label) in &original_edges {
        let ne = new_edge_of[old];
        // Additions: (A(add,e) ∧ ¬reset ∧ ¬build) ∨ (build ∧ missing-from-I₀-rebuild).
        let mut add = g
            .rules()
            .get(Right::Add, *old)
            .clone()
            .and(phase_free.clone());
        if initial_labels.contains(label) {
            add = add.or(Formula::label(BUILD).and(Formula::label(label).not()));
        }
        rules.set(Right::Add, ne, add);
        // Deletions: A(del,e) ∨ reset (as printed in the paper), with the
        // ordinary branch gated out of the phases.
        let del = g
            .rules()
            .get(Right::Del, *old)
            .clone()
            .and(phase_free.clone())
            .or(Formula::label(RESET));
        rules.set(Right::Del, ne, del);
    }

    // A(add, reset) = ¬build ∧ ¬reset ; A(del, reset) = build.
    rules.set(Right::Add, reset_edge, phase_free.clone());
    rules.set(Right::Del, reset_edge, Formula::label(BUILD));
    // A(add, build) = reset ∧ ¬build ∧ ¬(l₁ ∨ … ∨ lₙ).
    let any_original = Formula::disj(original_edges.iter().map(|(_, l)| Formula::label(l)));
    rules.set(
        Right::Add,
        build_edge,
        Formula::label(RESET).and(not_build).and(any_original.not()),
    );
    // A(del, build) tests "the instance is can(I₀)" over the original
    // labels (χ), with reset already gone.
    let chi = bisim::characteristic_formula(g.initial());
    rules.set(Right::Del, build_edge, chi.and(not_reset.clone()));

    // φ' = φ ∧ ¬reset ∧ ¬build.
    let completion = g.completion().clone().and(phase_free);

    // Initial instance: same content, rebuilt over the new schema.
    let mut initial = idar_core::Instance::empty(new_schema.clone());
    for c in g.initial().children(idar_core::InstNodeId::ROOT) {
        let label = g.initial().label(*c);
        initial
            .add_child_by_label(idar_core::InstNodeId::ROOT, label)
            .expect("original labels exist in extended schema");
    }

    Ok(GuardedForm::new(new_schema, rules, initial, completion))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{Instance, Schema};
    use idar_solver::semisound::{semisoundness, SemisoundnessOptions};
    use idar_solver::{completability, CompletabilityOptions, Verdict};

    fn form(
        schema: &str,
        rules: &[(&str, &str, &str)],
        initial: &str,
        completion: &str,
    ) -> GuardedForm {
        let schema = Arc::new(Schema::parse(schema).unwrap());
        let mut table = AccessRules::new(&schema);
        for (l, add, del) in rules {
            table.set_both(
                schema.resolve(l).unwrap(),
                Formula::parse(add).unwrap(),
                Formula::parse(del).unwrap(),
            );
        }
        let init = Instance::parse(schema.clone(), initial).unwrap();
        GuardedForm::new(schema, table, init, Formula::parse(completion).unwrap())
    }

    fn roundtrip(g: &GuardedForm) {
        let completable = completability(g, &CompletabilityOptions::default()).verdict;
        let g2 = reduce(g).unwrap();
        let semisound = semisoundness(&g2, &SemisoundnessOptions::default()).verdict;
        assert_eq!(
            completable, semisound,
            "Cor 4.7: G completable iff G' semi-sound"
        );
    }

    #[test]
    fn completable_forms_become_semisound() {
        // A form that is completable but NOT semi-sound (trap label t):
        // the reduction must yield a semi-sound G' anyway, because the
        // reset cycle can escape the trap.
        let g = form(
            "g, t",
            &[("g", "!t & !g", "false"), ("t", "!t", "false")],
            "",
            "g",
        );
        assert_eq!(
            semisoundness(&g, &SemisoundnessOptions::default()).verdict,
            Verdict::Fails
        );
        roundtrip(&g);
    }

    #[test]
    fn incompletable_forms_stay_unsound() {
        let g = form("a, b", &[("a", "b", "true"), ("b", "a", "true")], "", "a");
        assert_eq!(
            completability(&g, &CompletabilityOptions::default()).verdict,
            Verdict::Fails
        );
        roundtrip(&g);
    }

    #[test]
    fn nonempty_initial_instance() {
        // Completion requires deleting the pre-existing `a` then adding b;
        // the reduction must rebuild `a` during the build phase.
        let g = form(
            "a, b",
            &[("a", "false", "true"), ("b", "!a & !b", "false")],
            "a",
            "b & !a",
        );
        roundtrip(&g);
        // And a variant whose completion is impossible.
        let g = form("a, b", &[("a", "false", "false")], "a", "b");
        roundtrip(&g);
    }

    #[test]
    fn reduction_rejects_deep_forms() {
        let g = form("a(b)", &[], "", "a");
        assert_eq!(reduce(&g).unwrap_err(), ReduceError::NotDepthOne(2));
    }

    #[test]
    fn reduction_rejects_reserved_labels() {
        let g = form("reset", &[], "", "reset");
        assert!(matches!(
            reduce(&g).unwrap_err(),
            ReduceError::ReservedLabel(_)
        ));
    }

    #[test]
    fn reset_cycle_is_executable() {
        // Drive the cycle by hand on a tiny form: tear down, rebuild,
        // verify we are back at (the canonical form of) the start.
        let g = form("a, b", &[("b", "a & !b", "false")], "a", "b");
        let g2 = reduce(&g).unwrap();
        let sch = g2.schema().clone();
        let root = idar_core::InstNodeId::ROOT;
        let mut inst = g2.initial().clone();
        let e = |l: &str| sch.resolve(l).unwrap();
        // add reset
        g2.apply(
            &mut inst,
            &idar_core::Update::Add {
                parent: root,
                edge: e(RESET),
            },
        )
        .unwrap();
        // delete the original a
        let a_node = inst.children_with_label(root, "a").next().unwrap();
        g2.apply(&mut inst, &idar_core::Update::Del { node: a_node })
            .unwrap();
        // add build (form is empty of original labels)
        g2.apply(
            &mut inst,
            &idar_core::Update::Add {
                parent: root,
                edge: e(BUILD),
            },
        )
        .unwrap();
        // delete reset (build present)
        let r_node = inst.children_with_label(root, RESET).next().unwrap();
        g2.apply(&mut inst, &idar_core::Update::Del { node: r_node })
            .unwrap();
        // rebuild a
        g2.apply(
            &mut inst,
            &idar_core::Update::Add {
                parent: root,
                edge: e("a"),
            },
        )
        .unwrap();
        // delete build: allowed because the instance now matches can(I₀)
        let b_node = inst.children_with_label(root, BUILD).next().unwrap();
        g2.apply(&mut inst, &idar_core::Update::Del { node: b_node })
            .unwrap();
        // Back at the start (canonically).
        assert!(idar_core::bisim::equivalent(&inst, g2.initial()));
        // …and the original completion still works from here.
        g2.apply(
            &mut inst,
            &idar_core::Update::Add {
                parent: root,
                edge: e("b"),
            },
        )
        .unwrap();
        assert!(g2.is_complete(&inst));
    }

    #[test]
    fn build_cannot_start_early() {
        let g = form("a, b", &[("b", "a & !b", "false")], "a", "b");
        let g2 = reduce(&g).unwrap();
        let root = idar_core::InstNodeId::ROOT;
        let mut inst = g2.initial().clone();
        let e = |l: &str| g2.schema().resolve(l).unwrap();
        // build without reset: rejected.
        assert!(!g2.is_allowed(
            &inst,
            &idar_core::Update::Add {
                parent: root,
                edge: e(BUILD)
            }
        ));
        g2.apply(
            &mut inst,
            &idar_core::Update::Add {
                parent: root,
                edge: e(RESET),
            },
        )
        .unwrap();
        // build while `a` still present: rejected.
        assert!(!g2.is_allowed(
            &inst,
            &idar_core::Update::Add {
                parent: root,
                edge: e(BUILD)
            }
        ));
    }
}
