//! **Section 4.2**: with unrestricted access rules, a negative completion
//! formula can be compiled away — `F(A−, φ−, d)` reduces to
//! `F(A−, φ+, d)` — so every hardness result for unrestricted completion
//! formulas carries over to positive ones.
//!
//! "We add in the schema a new field `final` under the root `r`, let the
//! completion formula be `final` and add access rules for `final` such
//! that it can be added if the old completion formula holds."
//!
//! Note the new `A(add, final) = φ ∧ ¬final` generally contains negation:
//! the transformation *stays within* `A−` (which is exactly why the
//! positive-completion rows of Table 1 are only claimed for `A−`).

use idar_core::{Formula, GuardedForm, Right, SchemaBuilder, SchemaNodeId};
use std::sync::Arc;

/// The completion-marker label.
pub const FINAL: &str = "final";

/// Why a form cannot be transformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservedFinal;

impl std::fmt::Display for ReservedFinal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schema already has a root field `{FINAL}`")
    }
}
impl std::error::Error for ReservedFinal {}

/// Transform `G` so its completion formula is the single positive atom
/// `final`, preserving both completability and semi-soundness.
pub fn reduce(g: &GuardedForm) -> Result<GuardedForm, ReservedFinal> {
    let schema = g.schema();
    if schema.child_by_label(SchemaNodeId::ROOT, FINAL).is_some() {
        return Err(ReservedFinal);
    }

    // Rebuild the schema with the extra root field. Schema node ids are
    // assigned in creation order, so replaying the original creation order
    // first keeps every existing id stable, letting us reuse the original
    // rule table and initial instance topology directly.
    let mut b = SchemaBuilder::new();
    let mut id_map = std::collections::HashMap::new();
    id_map.insert(SchemaNodeId::ROOT, SchemaNodeId::ROOT);
    for old in schema.edge_ids() {
        let parent = id_map[&schema.parent(old).expect("edge has parent")];
        let ne = b.child(parent, schema.label(old)).expect("same labels");
        id_map.insert(old, ne);
        debug_assert_eq!(old, ne, "creation order preserves ids");
    }
    let final_edge = b.child(SchemaNodeId::ROOT, FINAL).expect("fresh label");
    let new_schema = Arc::new(b.build());

    let mut rules = idar_core::AccessRules::new(&new_schema);
    for old in schema.edge_ids() {
        rules.set(
            Right::Add,
            id_map[&old],
            g.rules().get(Right::Add, old).clone(),
        );
        rules.set(
            Right::Del,
            id_map[&old],
            g.rules().get(Right::Del, old).clone(),
        );
    }
    rules.set(
        Right::Add,
        final_edge,
        g.completion().clone().and(Formula::label(FINAL).not()),
    );
    // `final` is never deletable (default false).

    // Initial instance rebuilt over the new schema (same shape).
    let mut initial = idar_core::Instance::empty(new_schema.clone());
    let mut node_map = std::collections::HashMap::new();
    node_map.insert(idar_core::InstNodeId::ROOT, idar_core::InstNodeId::ROOT);
    for n in g.initial().live_nodes() {
        if n == idar_core::InstNodeId::ROOT {
            continue;
        }
        let p = node_map[&g.initial().parent(n).expect("non-root")];
        let nn = initial
            .add_child(p, id_map[&g.initial().schema_node(n)])
            .expect("same topology");
        node_map.insert(n, nn);
    }

    Ok(GuardedForm::new(
        new_schema,
        rules,
        initial,
        Formula::label(FINAL),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::fragment::{classify, Polarity};
    use idar_core::{AccessRules, Instance, Schema};
    use idar_solver::semisound::{semisoundness, SemisoundnessOptions};
    use idar_solver::{completability, CompletabilityOptions, Verdict};

    fn form(
        schema: &str,
        rules: &[(&str, &str, &str)],
        initial: &str,
        completion: &str,
    ) -> GuardedForm {
        let schema = Arc::new(Schema::parse(schema).unwrap());
        let mut table = AccessRules::new(&schema);
        for (l, add, del) in rules {
            table.set_both(
                schema.resolve(l).unwrap(),
                Formula::parse(add).unwrap(),
                Formula::parse(del).unwrap(),
            );
        }
        let init = Instance::parse(schema.clone(), initial).unwrap();
        GuardedForm::new(schema, table, init, Formula::parse(completion).unwrap())
    }

    #[test]
    fn completion_becomes_positive() {
        let g = form("a, b", &[("a", "!a", "false")], "", "a & !b");
        assert_eq!(classify(&g).completion, Polarity::Unrestricted);
        let g2 = reduce(&g).unwrap();
        assert_eq!(classify(&g2).completion, Polarity::Positive);
        assert_eq!(g2.completion().to_string(), "final");
    }

    #[test]
    fn completability_preserved() {
        let cases = [
            // (schema, rules, initial, completion)
            (
                "a, b",
                vec![("a", "!a", "false"), ("b", "a", "false")],
                "",
                "a & !b",
            ),
            ("a, b", vec![("a", "b", "true")], "", "a"), // incompletable
            (
                "a, b",
                vec![("a", "false", "true"), ("b", "true", "false")],
                "a",
                "b & !a",
            ),
        ];
        for (schema, rules, initial, completion) in cases {
            let g = form(schema, &rules, initial, completion);
            let before = completability(&g, &CompletabilityOptions::default()).verdict;
            let g2 = reduce(&g).unwrap();
            let after = completability(&g2, &CompletabilityOptions::default()).verdict;
            assert_eq!(before, after, "completability changed for φ = {completion}");
        }
    }

    #[test]
    fn semisoundness_preserved() {
        let cases = [
            // Semi-sound: everything stays completable.
            (
                "a, b",
                vec![("a", "!a", "true"), ("b", "a & !b", "true")],
                "",
                "a",
            ),
            // Not semi-sound: trap t blocks the goal.
            (
                "g, t",
                vec![("g", "!t & !g", "false"), ("t", "!t", "false")],
                "",
                "g",
            ),
        ];
        for (schema, rules, initial, completion) in cases {
            let g = form(schema, &rules, initial, completion);
            let before = semisoundness(&g, &SemisoundnessOptions::default()).verdict;
            let g2 = reduce(&g).unwrap();
            let after = semisoundness(&g2, &SemisoundnessOptions::default()).verdict;
            assert_eq!(before, after, "semi-soundness changed for {schema}");
        }
    }

    #[test]
    fn final_cannot_be_added_early_or_twice() {
        let g = form("a", &[("a", "!a", "false")], "", "a");
        let g2 = reduce(&g).unwrap();
        let root = idar_core::InstNodeId::ROOT;
        let fe = g2.schema().resolve(FINAL).unwrap();
        let mut inst = g2.initial().clone();
        // φ (= a) does not hold yet.
        assert!(!g2.is_allowed(
            &inst,
            &idar_core::Update::Add {
                parent: root,
                edge: fe
            }
        ));
        let ae = g2.schema().resolve("a").unwrap();
        g2.apply(
            &mut inst,
            &idar_core::Update::Add {
                parent: root,
                edge: ae,
            },
        )
        .unwrap();
        g2.apply(
            &mut inst,
            &idar_core::Update::Add {
                parent: root,
                edge: fe,
            },
        )
        .unwrap();
        assert!(g2.is_complete(&inst));
        assert!(!g2.is_allowed(
            &inst,
            &idar_core::Update::Add {
                parent: root,
                edge: fe
            }
        ));
        // final is frozen.
        let fnode = inst.children_with_label(root, FINAL).next().unwrap();
        assert!(!g2.is_allowed(&inst, &idar_core::Update::Del { node: fnode }));
    }

    #[test]
    fn deep_schemas_supported() {
        let g = form(
            "a(p(b))",
            &[
                ("a", "!a", "false"),
                ("a/p", "true", "false"),
                ("a/p/b", "!b", "false"),
            ],
            "",
            "a/p[b] & !a/p[!b]",
        );
        let g2 = reduce(&g).unwrap();
        assert_eq!(g2.schema().depth(), 3);
        let before = completability(&g, &CompletabilityOptions::default()).verdict;
        let after = completability(&g2, &CompletabilityOptions::default()).verdict;
        assert_eq!(before, Verdict::Holds);
        assert_eq!(before, after);
    }

    #[test]
    fn reserved_label_rejected() {
        let g = form("final", &[], "", "final");
        assert_eq!(reduce(&g).unwrap_err(), ReservedFinal);
    }
}
