//! **Corollary 4.5, NP-hardness direction**: SAT reduces to formula
//! satisfiability.
//!
//! "The NP-hardness proof is a straightforward reduction from SAT to
//! satisfiability; e.g., the satisfiability of the propositional formula
//! `(x1 ∨ x2) ∧ ¬x3` corresponds to the satisfiability of the formula
//! `(a ∨ b) ∧ ¬c`." — variables become label steps evaluated at the root.

use crate::sat_to_completability::prop_to_formula;
use idar_core::Formula;
use idar_logic::prop::{Cnf, PropFormula};

/// Translate a CNF into a root-evaluated path formula whose satisfiability
/// (over arbitrary trees) coincides with propositional satisfiability.
pub fn reduce(cnf: &Cnf) -> Formula {
    prop_to_formula(&PropFormula::from_cnf(cnf))
}

/// Translate an arbitrary propositional formula.
pub fn reduce_prop(f: &PropFormula) -> Formula {
    prop_to_formula(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_logic::prop::Lit;
    use idar_solver::satisfiability::{satisfiable, SatOptions, SatResult};

    #[test]
    fn the_paper_example() {
        // (x1 ∨ x2) ∧ ¬x3 ↦ (a ∨ b) ∧ ¬c — satisfiable.
        let cnf = Cnf::new(vec![vec![Lit::pos(0), Lit::pos(1)], vec![Lit::neg(2)]]);
        let f = reduce(&cnf);
        assert!(satisfiable(&f, &SatOptions::default()).is_sat());
    }

    #[test]
    fn agrees_with_every_sat_engine() {
        use idar_logic::Engine;
        for seed in 0..40 {
            let cnf = idar_logic::gen::random_3cnf(seed, 5, 8 + (seed as usize % 14));
            let f = reduce(&cnf);
            // The reduction must agree with each engine, and the engines
            // with each other — the satisfiability solver itself is run
            // once per engine so the fast path is exercised under both.
            let baseline = idar_logic::sat_solve(&cnf).is_some();
            for engine in [Engine::Cdcl, Engine::Dpll] {
                let opts = SatOptions {
                    engine,
                    ..SatOptions::default()
                };
                let r = satisfiable(&f, &opts);
                assert_eq!(r.is_sat(), baseline, "seed {seed} ({engine}): {cnf} vs {f}");
                assert_ne!(r, SatResult::BudgetExhausted);
                assert_eq!(engine.solve(&cnf).is_some(), baseline, "seed {seed}");
            }
        }
    }

    #[test]
    fn arbitrary_prop_formulas() {
        use idar_logic::gen::random_prop;
        for seed in 0..40 {
            let pf = random_prop(seed, 4, 8);
            let f = reduce_prop(&pf);
            // Baseline: brute force over the 4 variables.
            let mut baseline = false;
            for bits in 0u8..16 {
                let a =
                    idar_logic::Assignment::from_bits((0..4).map(|i| bits >> i & 1 == 1).collect());
                if pf.eval(&a) {
                    baseline = true;
                    break;
                }
            }
            assert_eq!(
                satisfiable(&f, &SatOptions::default()).is_sat(),
                baseline,
                "seed {seed}: {pf}"
            );
        }
    }
}
