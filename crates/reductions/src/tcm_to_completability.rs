//! **Theorem 4.1**: two-counter machines reduce to completability of
//! depth-2 guarded forms — completability and semi-soundness are
//! **undecidable** for `F(A−, φ−, ∞)` (even at depth 2).
//!
//! A configuration `(q, n, m)` is the instance with a `q`-node, `n`
//! `c1`-nodes and `m` `c2`-nodes under the root. Counter updates use the
//! paper's marking protocol: to **increment**, mark every `c1` with a `d`
//! child, raise the root marker `m1`, add the single unmarked `c1` (its
//! absence of `d` is what distinguishes "before" from "after"), then
//! unmark. To **decrement** — the paper's "rather cumbersome procedure" —
//! mark *one* victim with `d`, mark all others with `d′` (label `dd`),
//! unmark the victim, delete it (it is the only markless *leaf*; the
//! others carry children and leaf-only deletion protects them), then
//! unmark the rest.
//!
//! ### Documented repairs to the published sketch
//!
//! The paper's rule listing (a) writes `init(q0,+,0)` where the only
//! transition is `δ(q0,0,+)` — an evident typo we read as the latter —
//! and (b) leaves *re-execution* unguarded: after an increment's cleanup
//! the instance looks exactly like before the increment started, so the
//! protocol could run again within the same active transition and double
//! the counter move. We add two guard families the sketch implies:
//! per-counter "phase complete" markers `mm1`/`mm2` that persist until
//! transition teardown, and a per-transition `done` field `dn⟨t⟩` that
//! closes the working window (`… ∧ ¬dn⟨t⟩` on every protocol rule).
//! Both live at depth 1; the form stays at depth 2 as the theorem states.

use idar_core::{
    AccessRules, Formula, GuardedForm, InstNodeId, Instance, Right, SchemaBuilder, SchemaNodeId,
};
use idar_machines::{Action, Config, State, Test, TwoCounterMachine};
use std::sync::Arc;

/// Label of machine state `q`.
pub fn state_label(q: State) -> String {
    format!("q{}", q.0)
}

/// Label of counter `i ∈ {1, 2}`.
pub fn counter_label(i: u8) -> String {
    format!("c{i}")
}

/// Label of the in-progress marker for transition `idx` (paper:
/// `init(q,s1,s2)`).
pub fn init_label(idx: usize) -> String {
    format!("t{idx}")
}

/// Label of the done marker for transition `idx` (repair, see module doc).
pub fn done_label(idx: usize) -> String {
    format!("dn{idx}")
}

/// The compiled guarded form plus decoding metadata.
#[derive(Debug, Clone)]
pub struct TcmForm {
    pub form: GuardedForm,
    machine: TwoCounterMachine,
    transitions: Vec<(idar_machines::Domain, idar_machines::Effect)>,
}

/// Compile a machine into a depth-2 guarded form whose completability is
/// exactly the machine's halting (Thm 4.1).
pub fn reduce(machine: &TwoCounterMachine) -> TcmForm {
    let transitions: Vec<_> = machine.delta.iter().map(|(&d, &e)| (d, e)).collect();

    // ---- Schema -------------------------------------------------------
    let mut b = SchemaBuilder::new();
    for q in 0..machine.states {
        b.child(SchemaNodeId::ROOT, &state_label(State(q)))
            .expect("fresh");
    }
    let mut counter_edges = [SchemaNodeId::ROOT; 2];
    let mut d_edges = [SchemaNodeId::ROOT; 2];
    let mut dd_edges = [SchemaNodeId::ROOT; 2];
    let mut m_edges = [SchemaNodeId::ROOT; 2];
    let mut mm_edges = [SchemaNodeId::ROOT; 2];
    for i in 0..2u8 {
        let c = b
            .child(SchemaNodeId::ROOT, &counter_label(i + 1))
            .expect("fresh");
        counter_edges[i as usize] = c;
        d_edges[i as usize] = b.child(c, "d").expect("fresh");
        dd_edges[i as usize] = b.child(c, "dd").expect("fresh");
        m_edges[i as usize] = b
            .child(SchemaNodeId::ROOT, &format!("m{}", i + 1))
            .expect("fresh");
        mm_edges[i as usize] = b
            .child(SchemaNodeId::ROOT, &format!("mm{}", i + 1))
            .expect("fresh");
    }
    let mut init_edges = Vec::with_capacity(transitions.len());
    let mut done_edges = Vec::with_capacity(transitions.len());
    for idx in 0..transitions.len() {
        init_edges.push(
            b.child(SchemaNodeId::ROOT, &init_label(idx))
                .expect("fresh"),
        );
        done_edges.push(
            b.child(SchemaNodeId::ROOT, &done_label(idx))
                .expect("fresh"),
        );
    }
    let schema = Arc::new(b.build());

    // ---- Formula helpers ----------------------------------------------
    let lbl = |s: &str| Formula::label(s);
    // `ci[f]` at the root.
    let counter_with = |i: usize, f: Formula| {
        Formula::Path(idar_core::PathExpr::Filter(
            Box::new(idar_core::PathExpr::Label(counter_label(i as u8 + 1))),
            Box::new(f),
        ))
    };
    // `..[f]` — for rules evaluated at a counter node.
    let at_root = |f: Formula| f.at_parent();

    let mut rules = AccessRules::new(&schema);

    for (idx, &((q, s1, s2), (p, a1, a2))) in transitions.iter().enumerate() {
        let t = init_label(idx);
        let dn = done_label(idx);
        // Root-context "this transition is in its working window".
        let active = lbl(&t).and(lbl(&dn).not());

        // ---- start: A(add, t) -----------------------------------------
        let sigma = |i: usize, s: Test| match s {
            Test::Positive => lbl(&counter_label(i as u8 + 1)),
            Test::Zero => lbl(&counter_label(i as u8 + 1)).not(),
        };
        let mut start = lbl(&state_label(q)).and(sigma(0, s1)).and(sigma(1, s2));
        for other in 0..transitions.len() {
            start = start
                .and(lbl(&init_label(other)).not())
                .and(lbl(&done_label(other)).not());
        }
        rules.set(Right::Add, init_edges[idx], start);

        // ---- per-counter protocols -------------------------------------
        let mut completes: Vec<Formula> = Vec::new();
        for (i, action) in [(0usize, a1), (1usize, a2)] {
            let mi = format!("m{}", i + 1);
            let mmi = format!("mm{}", i + 1);
            match action {
                Action::Keep => completes.push(Formula::True),
                Action::Inc => {
                    // Mark every ci with d while no phase marker is up.
                    rules.add_disjunct(
                        Right::Add,
                        d_edges[i],
                        at_root(active.clone().and(lbl(&mi).not()).and(lbl(&mmi).not()))
                            .and(lbl("d").not()),
                    );
                    // All marked → raise m_i.
                    rules.add_disjunct(
                        Right::Add,
                        m_edges[i],
                        active
                            .clone()
                            .and(counter_with(i, lbl("d").not()).not())
                            .and(lbl(&mi).not())
                            .and(lbl(&mmi).not()),
                    );
                    // Add the one unmarked ci.
                    rules.add_disjunct(
                        Right::Add,
                        counter_edges[i],
                        active
                            .clone()
                            .and(lbl(&mi))
                            .and(lbl(&mmi).not())
                            .and(counter_with(i, lbl("d").not()).not()),
                    );
                    // Unmarked ci present → phase complete marker mm_i.
                    rules.add_disjunct(
                        Right::Add,
                        mm_edges[i],
                        active
                            .clone()
                            .and(lbl(&mi))
                            .and(counter_with(i, lbl("d").not()))
                            .and(lbl(&mmi).not()),
                    );
                    // Tear the d marks down, then m_i.
                    rules.add_disjunct(Right::Del, d_edges[i], at_root(lbl(&t).and(lbl(&mmi))));
                    rules.add_disjunct(
                        Right::Del,
                        m_edges[i],
                        lbl(&t).and(lbl(&mmi)).and(counter_with(i, lbl("d")).not()),
                    );
                    completes.push(
                        lbl(&mmi)
                            .and(lbl(&mi).not())
                            .and(counter_with(i, lbl("d")).not()),
                    );
                }
                Action::Dec => {
                    let unmarked = lbl("d").not().and(lbl("dd").not());
                    // Mark ONE victim with d.
                    rules.add_disjunct(
                        Right::Add,
                        d_edges[i],
                        at_root(
                            active
                                .clone()
                                .and(counter_with(i, lbl("d")).not())
                                .and(lbl(&mi).not())
                                .and(lbl(&mmi).not()),
                        )
                        .and(unmarked.clone()),
                    );
                    // Mark every other ci with dd.
                    rules.add_disjunct(
                        Right::Add,
                        dd_edges[i],
                        at_root(
                            active
                                .clone()
                                .and(counter_with(i, lbl("d")))
                                .and(lbl(&mi).not())
                                .and(lbl(&mmi).not()),
                        )
                        .and(unmarked),
                    );
                    // Everyone marked (victim d, rest dd) → m_i.
                    rules.add_disjunct(
                        Right::Add,
                        m_edges[i],
                        active
                            .clone()
                            .and(counter_with(i, lbl("d")))
                            .and(counter_with(i, lbl("d").not().and(lbl("dd").not())).not())
                            .and(lbl(&mi).not())
                            .and(lbl(&mmi).not()),
                    );
                    // Unmark the victim…
                    rules.add_disjunct(
                        Right::Del,
                        d_edges[i],
                        at_root(lbl(&t).and(lbl(&mi)).and(lbl(&mmi).not())),
                    );
                    // …and delete it: the only markless *leaf* ci.
                    rules.add_disjunct(
                        Right::Del,
                        counter_edges[i],
                        lbl(&t)
                            .and(lbl(&mi))
                            .and(lbl(&mmi).not())
                            .and(counter_with(i, lbl("d")).not()),
                    );
                    // Victim gone (no ci without dd) → mm_i.
                    rules.add_disjunct(
                        Right::Add,
                        mm_edges[i],
                        active
                            .clone()
                            .and(lbl(&mi))
                            .and(counter_with(i, lbl("d")).not())
                            .and(counter_with(i, lbl("dd").not()).not())
                            .and(lbl(&mmi).not()),
                    );
                    // Tear down dd marks, then m_i.
                    rules.add_disjunct(Right::Del, dd_edges[i], at_root(lbl(&t).and(lbl(&mmi))));
                    rules.add_disjunct(
                        Right::Del,
                        m_edges[i],
                        lbl(&t)
                            .and(lbl(&mmi))
                            .and(counter_with(i, lbl("d")).not())
                            .and(counter_with(i, lbl("dd")).not()),
                    );
                    completes.push(
                        lbl(&mmi)
                            .and(lbl(&mi).not())
                            .and(counter_with(i, lbl("d")).not())
                            .and(counter_with(i, lbl("dd")).not()),
                    );
                }
            }
        }

        // ---- state switch ----------------------------------------------
        let both_complete = completes[0].clone().and(completes[1].clone());
        let switch_complete = if p == q {
            Formula::True
        } else {
            let q_edge = schema.resolve(&state_label(q)).expect("state edge");
            let p_edge = schema.resolve(&state_label(p)).expect("state edge");
            rules.add_disjunct(
                Right::Add,
                p_edge,
                active
                    .clone()
                    .and(both_complete.clone())
                    .and(lbl(&state_label(p)).not()),
            );
            rules.add_disjunct(Right::Del, q_edge, lbl(&t).and(lbl(&state_label(p))));
            lbl(&state_label(p)).and(lbl(&state_label(q)).not())
        };

        // ---- done + teardown -------------------------------------------
        rules.set(
            Right::Add,
            done_edges[idx],
            active.and(both_complete).and(switch_complete),
        );
        for (i, action) in [a1, a2].into_iter().enumerate() {
            if action != Action::Keep {
                rules.add_disjunct(Right::Del, mm_edges[i], lbl(&t).and(lbl(&dn)));
            }
        }
        rules.set(
            Right::Del,
            init_edges[idx],
            lbl(&dn).and(lbl("mm1").not()).and(lbl("mm2").not()),
        );
        rules.set(Right::Del, done_edges[idx], lbl(&t).not());
    }

    // Mechanically-built guards carry constant clutter; simplification is
    // semantics-preserving (property-tested) and speeds up every guard
    // evaluation in the exploration.
    rules.map_guards(&schema, |_, _, g| g.simplified());

    // ---- completion: "the disjunction of all accepting states" ---------
    let completion = Formula::disj(
        machine
            .accepting
            .iter()
            .map(|&q| Formula::label(&state_label(q))),
    );

    // ---- initial instance: Conf(q0, 0, 0) -------------------------------
    let mut initial = Instance::empty(schema.clone());
    initial
        .add_child_by_label(InstNodeId::ROOT, &state_label(State(0)))
        .expect("q0 exists");

    TcmForm {
        form: GuardedForm::new(schema, rules, initial, completion),
        machine: machine.clone(),
        transitions,
    }
}

impl TcmForm {
    /// Number of compiled transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Decode a *quiescent* instance (no transition in flight, no marks)
    /// into the machine configuration it represents; `None` otherwise.
    pub fn decode_config(&self, inst: &Instance) -> Option<Config> {
        let root = InstNodeId::ROOT;
        for idx in 0..self.transitions.len() {
            for l in [init_label(idx), done_label(idx)] {
                if inst.children_with_label(root, &l).next().is_some() {
                    return None;
                }
            }
        }
        for l in ["m1", "mm1", "m2", "mm2"] {
            if inst.children_with_label(root, l).next().is_some() {
                return None;
            }
        }
        let mut state = None;
        for q in 0..self.machine.states {
            if inst
                .children_with_label(root, &state_label(State(q)))
                .next()
                .is_some()
                && state.replace(State(q)).is_some()
            {
                return None; // two state labels: mid-switch
            }
        }
        let state = state?;
        let mut counts = [0u64; 2];
        for i in 0..2u8 {
            for c in inst.children_with_label(root, &counter_label(i + 1)) {
                if !inst.is_leaf(c) {
                    return None; // marked counter node: mid-protocol
                }
                counts[i as usize] += 1;
            }
        }
        Some(Config {
            state,
            c1: counts[0],
            c2: counts[1],
        })
    }

    /// Drive the form with a deterministic scheduler (first allowed
    /// update) until it reaches the next quiescent instance or `max_steps`
    /// micro-steps elapse. Returns the decoded configuration on arrival.
    ///
    /// The protocol is confluent, so any scheduler reaches the same next
    /// configuration — the tests cross-check this against the reference
    /// simulator.
    pub fn step_to_next_config(
        &self,
        inst: &mut Instance,
        max_steps: usize,
    ) -> Option<(Config, usize)> {
        let mut steps = 0usize;
        // First leave the current quiescent state (if quiescent).
        let mut left_quiescence = false;
        while steps < max_steps {
            if left_quiescence {
                if let Some(c) = self.decode_config(inst) {
                    return Some((c, steps));
                }
            }
            let updates = self.form.allowed_updates(inst);
            let Some(u) = updates.first() else {
                return None; // stuck (machine has no applicable transition)
            };
            self.form
                .apply_unchecked(inst, u)
                .expect("allowed update applies");
            steps += 1;
            left_quiescence = true;
        }
        None
    }

    /// Run the compiled form like a machine: extract the configuration
    /// trace (including the initial configuration).
    pub fn trace(&self, max_configs: usize, max_micro_steps: usize) -> Vec<Config> {
        let mut inst = self.form.initial().clone();
        let mut out = vec![self
            .decode_config(&inst)
            .expect("initial instance is quiescent")];
        while out.len() < max_configs {
            if self.machine.is_accepting(out.last().unwrap().state) {
                break;
            }
            match self.step_to_next_config(&mut inst, max_micro_steps) {
                Some((c, _)) => out.push(c),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::fragment::{classify, DepthClass, Polarity};
    use idar_machines::library;
    use idar_solver::{completability, CompletabilityOptions, ExploreLimits, Verdict};

    #[test]
    fn compiled_form_is_depth_2() {
        let tcm = reduce(&library::count_up_then_accept(2));
        assert_eq!(tcm.form.schema().depth(), 2);
        let f = classify(&tcm.form);
        assert_eq!(f.access, Polarity::Unrestricted);
        assert_eq!(f.depth, DepthClass::K(2));
    }

    #[test]
    fn micro_stepped_trace_matches_reference_simulator() {
        for (machine, configs) in [
            (library::count_up_then_accept(3), 5),
            (library::transfer_c1_to_c2(2), 6),
            (library::accept_iff_even(4), 8),
            (library::accept_iff_even(3), 8),
            (library::ping_pong(), 7),
            (library::diverge(), 6),
        ] {
            let tcm = reduce(&machine);
            let got = tcm.trace(configs, 4_000);
            let expected_full = machine.trace(configs as u64);
            let expected: Vec<_> = expected_full.iter().copied().take(got.len()).collect();
            assert_eq!(got, expected, "trace diverged");
            assert!(
                got.len() == configs || got.len() == expected_full.len(),
                "trace stopped early: {} of {}",
                got.len(),
                expected_full.len()
            );
        }
    }

    #[test]
    fn halting_machines_are_completable() {
        for machine in [
            library::count_up_then_accept(0),
            library::count_up_then_accept(2),
            library::transfer_c1_to_c2(1),
            library::accept_iff_even(2),
        ] {
            assert!(machine.run(10_000).halted());
            let tcm = reduce(&machine);
            let r = completability(
                &tcm.form,
                &CompletabilityOptions::with_limits(ExploreLimits {
                    max_states: 2_000_000,
                    max_state_size: 256,
                    ..ExploreLimits::default()
                }),
            );
            assert_eq!(r.verdict, Verdict::Holds, "halting machine must complete");
            // Completion fires the moment the accepting state label
            // appears — possibly mid-teardown of the final transition, so
            // the final instance need not be quiescent. Check the label.
            let run = r.witness_run.unwrap();
            let replay = tcm.form.replay(&run).unwrap();
            let accepting = idar_core::Formula::disj(
                tcm.machine
                    .accepting
                    .iter()
                    .map(|&q| idar_core::Formula::label(&state_label(q))),
            );
            assert!(idar_core::formula::holds_at_root(replay.last(), &accepting));
            // Driving the remaining teardown reaches a quiescent accepting
            // configuration.
            let mut inst = replay.last().clone();
            for _ in 0..200 {
                if tcm.decode_config(&inst).is_some() {
                    break;
                }
                let updates = tcm.form.allowed_updates(&inst);
                let Some(u) = updates.first() else { break };
                tcm.form.apply_unchecked(&mut inst, u).unwrap();
            }
            let config = tcm
                .decode_config(&inst)
                .expect("teardown reaches quiescence");
            assert!(tcm.machine.is_accepting(config.state));
        }
    }

    #[test]
    fn nonhalting_machines_never_complete_within_bounds() {
        for machine in [
            library::diverge(),
            library::ping_pong(),
            library::accept_iff_even(3),
        ] {
            assert!(!machine.run(10_000).halted());
            let tcm = reduce(&machine);
            let r = completability(
                &tcm.form,
                &CompletabilityOptions::with_limits(ExploreLimits {
                    max_states: 30_000,
                    max_state_size: 64,
                    ..ExploreLimits::default()
                }),
            );
            assert_ne!(r.verdict, Verdict::Holds, "diverging machine completed?!");
        }
    }

    #[test]
    fn stuck_odd_machine_is_exactly_incompletable() {
        // accept_iff_even(1): pump to 1, then get stuck at the inner
        // subtraction state. The reachable space of the compiled form is
        // finite, so the bounded explorer *closes* and proves Fails.
        let machine = library::accept_iff_even(1);
        let tcm = reduce(&machine);
        let r = completability(
            &tcm.form,
            &CompletabilityOptions::with_limits(ExploreLimits::default()),
        );
        assert_eq!(r.verdict, Verdict::Fails);
        assert!(r.stats.closed, "finite space should close");
    }

    #[test]
    fn paper_single_transition_example() {
        // δ(q0, 0, +) = (q1, +, 0) from (q0,0,0): the zero test on c2
        // fails, nothing is ever enabled, the form is incompletable.
        let machine = library::paper_single_transition();
        let tcm = reduce(&machine);
        assert!(tcm.form.allowed_updates(tcm.form.initial()).is_empty());
        let r = completability(&tcm.form, &CompletabilityOptions::default());
        assert_eq!(r.verdict, Verdict::Fails);
        assert!(r.stats.closed);
    }

    #[test]
    fn semisoundness_equals_completability_for_deterministic_machines() {
        // Thm 4.1: "in this case, the completability problem and the
        // semi-soundness problem are equivalent."
        use idar_solver::semisound::{semisoundness, SemisoundnessOptions};
        let machine = library::count_up_then_accept(1);
        let tcm = reduce(&machine);
        let c = completability(&tcm.form, &CompletabilityOptions::default()).verdict;
        let s = semisoundness(
            &tcm.form,
            &SemisoundnessOptions {
                limits: ExploreLimits {
                    max_states: 100_000,
                    ..ExploreLimits::small()
                },
                ..Default::default()
            },
        )
        .verdict;
        assert_eq!(c, Verdict::Holds);
        assert_eq!(s, Verdict::Holds);
    }

    #[test]
    fn increment_counts_exactly_once() {
        // Drive count_up(1) to acceptance and check c1 never exceeds 1.
        let machine = library::count_up_then_accept(1);
        let tcm = reduce(&machine);
        let trace = tcm.trace(10, 2_000);
        assert_eq!(
            trace.last().map(|c| (c.c1, c.c2)),
            Some((1, 0)),
            "exactly one increment"
        );
    }
}
