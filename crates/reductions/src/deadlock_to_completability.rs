//! **Theorem 4.6**: the PSPACE-complete *reachable deadlock* problem
//! reduces to completability for depth-1 guarded forms (`F(A−, φ−, 1)`).
//!
//! Construction (verbatim from the proof):
//!
//! * one root label `n(v)` per vertex and `n(t)` per synchronised pair;
//! * the initial instance encodes the start configuration;
//! * `conf ≝ ¬(∨_{t∈T} n(t))` — "no transition in progress";
//! * completion formula `φ = conf ∧ ∧_{((a,b),(c,d))∈T} ¬(n(a) ∧ n(c))` —
//!   a configuration with no enabled pair, i.e. a deadlock;
//! * a pair `t = ((a,b),(c,d))` executes via its control node: add `n(t)`
//!   when `conf ∧ n(a) ∧ n(c)`; the sources become deletable and the
//!   targets addable while `n(t)` is present; remove `n(t)` once
//!   `¬n(a) ∧ ¬n(c) ∧ n(b) ∧ n(d)`.
//! * "There are no other access rights" — the default guard is `false`.
//!
//! The construction needs `a ≠ b` and `c ≠ d` on every pair (else
//! `¬n(a) ∧ n(b)` is unsatisfiable); [`reduce`] rejects self-loop edges.

use idar_core::{
    AccessRules, Formula, GuardedForm, InstNodeId, Instance, Right, SchemaBuilder, SchemaNodeId,
};
use idar_deadlock::{Configuration, DeadlockInstance, SyncPair, Vertex};
use std::sync::Arc;

/// The label of a vertex node `n(v)`.
pub fn vertex_label(v: Vertex) -> String {
    format!("n{}", v.0)
}

/// The label of a transition control node `n(t)` (by pair index).
pub fn pair_label(idx: usize) -> String {
    format!("t{idx}")
}

/// Why an instance cannot be reduced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfLoopPair(pub usize);

impl std::fmt::Display for SelfLoopPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sync pair {} moves a component onto itself; the Thm 4.6 \
             encoding requires from != to",
            self.0
        )
    }
}
impl std::error::Error for SelfLoopPair {}

/// Compile a reachable-deadlock instance into a depth-1 guarded form that
/// is completable iff the instance has a reachable deadlock.
pub fn reduce(inst: &DeadlockInstance) -> Result<GuardedForm, SelfLoopPair> {
    for (idx, p) in inst.pairs.iter().enumerate() {
        if p.from_i == p.to_i || p.from_j == p.to_j {
            return Err(SelfLoopPair(idx));
        }
    }

    let mut b = SchemaBuilder::new();
    let mut vertex_edges = Vec::with_capacity(inst.vertex_count());
    for v in 0..inst.vertex_count() {
        vertex_edges.push(
            b.child(SchemaNodeId::ROOT, &vertex_label(Vertex(v as u32)))
                .expect("distinct vertex labels"),
        );
    }
    let mut pair_edges = Vec::with_capacity(inst.pairs.len());
    for idx in 0..inst.pairs.len() {
        pair_edges.push(
            b.child(SchemaNodeId::ROOT, &pair_label(idx))
                .expect("distinct pair labels"),
        );
    }
    let schema = Arc::new(b.build());

    // conf = ¬(∨_t n(t))
    let conf = Formula::disj((0..inst.pairs.len()).map(|i| Formula::label(&pair_label(i)))).not();

    let mut rules = AccessRules::new(&schema); // default false: no other rights
    let vl = |v: Vertex| Formula::label(&vertex_label(v));

    for (idx, p) in inst.pairs.iter().enumerate() {
        // A(add, n(t)) = conf ∧ n(a) ∧ n(c)
        rules.set(
            Right::Add,
            pair_edges[idx],
            conf.clone().and(vl(p.from_i)).and(vl(p.from_j)),
        );
        // A(del, n(t)) = ¬n(a) ∧ ¬n(c) ∧ n(b) ∧ n(d)
        rules.set(
            Right::Del,
            pair_edges[idx],
            vl(p.from_i)
                .not()
                .and(vl(p.from_j).not())
                .and(vl(p.to_i))
                .and(vl(p.to_j)),
        );
    }

    // Vertex rules: addable when some in-flight pair targets v, deletable
    // when some in-flight pair sources v.
    #[allow(clippy::needless_range_loop)] // `v` is the vertex id itself
    for v in 0..inst.vertex_count() {
        let vert = Vertex(v as u32);
        let targeting: Vec<Formula> = inst
            .pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.to_i == vert || p.to_j == vert)
            .map(|(idx, _)| Formula::label(&pair_label(idx)))
            .collect();
        let sourcing: Vec<Formula> = inst
            .pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.from_i == vert || p.from_j == vert)
            .map(|(idx, _)| Formula::label(&pair_label(idx)))
            .collect();
        if !targeting.is_empty() {
            rules.set(
                Right::Add,
                vertex_edges[v],
                vl(vert).not().and(Formula::disj(targeting)),
            );
        }
        if !sourcing.is_empty() {
            rules.set(Right::Del, vertex_edges[v], Formula::disj(sourcing));
        }
    }

    rules.map_guards(&schema, |_, _, g| g.simplified());

    // φ = conf ∧ ∧_{((a,b),(c,d))} ¬(n(a) ∧ n(c))
    let completion = inst
        .pairs
        .iter()
        .fold(conf, |acc, p| acc.and(vl(p.from_i).and(vl(p.from_j)).not()));

    // Initial instance: the start configuration.
    let mut initial = Instance::empty(schema.clone());
    for v in &inst.start {
        initial
            .add_child(InstNodeId::ROOT, vertex_edges[v.0 as usize])
            .expect("start vertices exist");
    }

    Ok(GuardedForm::new(schema, rules, initial, completion))
}

/// Decode a "quiet" instance (no control nodes) back into a configuration.
/// Returns `None` if a control node is present or some component has no
/// unique vertex.
pub fn decode_configuration(deadlock: &DeadlockInstance, inst: &Instance) -> Option<Configuration> {
    for idx in 0..deadlock.pairs.len() {
        if inst
            .children_with_label(InstNodeId::ROOT, &pair_label(idx))
            .next()
            .is_some()
        {
            return None;
        }
    }
    let mut config: Vec<Option<Vertex>> = vec![None; deadlock.components];
    for v in 0..deadlock.vertex_count() {
        let vert = Vertex(v as u32);
        if inst
            .children_with_label(InstNodeId::ROOT, &vertex_label(vert))
            .next()
            .is_some()
        {
            let comp = deadlock.component_of[v];
            if config[comp].replace(vert).is_some() {
                return None; // two vertices in one component
            }
        }
    }
    config.into_iter().collect()
}

/// Convenience: does this `SyncPair` list make `reduce` applicable?
pub fn reducible(pairs: &[SyncPair]) -> bool {
    pairs
        .iter()
        .all(|p| p.from_i != p.to_i && p.from_j != p.to_j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::fragment::{classify, DepthClass, Polarity};
    use idar_deadlock::{dining_philosophers, ping_pong_free, DeadlockBuilder};
    use idar_solver::{completability, CompletabilityOptions, Verdict};

    fn verdict(inst: &DeadlockInstance) -> Verdict {
        let g = reduce(inst).expect("reducible");
        completability(&g, &CompletabilityOptions::default()).verdict
    }

    #[test]
    fn fragment_is_depth1_unrestricted() {
        let g = reduce(&ping_pong_free()).unwrap();
        let f = classify(&g);
        assert_eq!(f.depth, DepthClass::One);
        assert_eq!(f.access, Polarity::Unrestricted);
        assert_eq!(f.completion, Polarity::Unrestricted);
    }

    #[test]
    fn deadlock_free_system_is_incompletable() {
        let inst = ping_pong_free();
        assert!(inst.find_reachable_deadlock().deadlock.is_none());
        assert_eq!(verdict(&inst), Verdict::Fails);
    }

    #[test]
    fn philosophers_deadlock_is_found() {
        for n in 2..=3 {
            let inst = dining_philosophers(n);
            assert!(inst.find_reachable_deadlock().deadlock.is_some());
            assert_eq!(verdict(&inst), Verdict::Holds, "n = {n}");
        }
    }

    #[test]
    fn witness_run_decodes_to_the_deadlock() {
        let inst = dining_philosophers(2);
        let g = reduce(&inst).unwrap();
        let r = completability(&g, &CompletabilityOptions::default());
        assert_eq!(r.verdict, Verdict::Holds);
        let run = r.witness_run.unwrap();
        let replay = g.replay(&run).unwrap();
        let config = decode_configuration(&inst, replay.last())
            .expect("complete instance is a quiet configuration");
        assert!(inst.is_deadlock(&config));
        // And it is genuinely reachable in the baseline semantics.
        let baseline = inst.find_reachable_deadlock();
        assert!(baseline.deadlock.is_some());
    }

    #[test]
    fn immediate_deadlock_at_start() {
        let mut b = DeadlockBuilder::new();
        b.component(1);
        b.component(1);
        let inst = b.build().unwrap();
        assert_eq!(verdict(&inst), Verdict::Holds);
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = DeadlockBuilder::new();
        let a = b.component(2);
        let c = b.component(2);
        b.pair(0, a[0], a[0], 1, c[0], c[1]);
        let inst = b.build().unwrap();
        assert_eq!(reduce(&inst).unwrap_err(), SelfLoopPair(0));
    }

    #[test]
    fn random_systems_agree_with_baseline() {
        // Small random synchronised systems; compare reduction verdict
        // with the explicit checker.
        use idar_logic::gen::{Rng, XorShift};
        let mut rng = XorShift::new(2024);
        let mut holds = 0;
        let mut fails = 0;
        for _ in 0..12 {
            let mut b = DeadlockBuilder::new();
            let k = 2 + rng.below(2); // 2..3 components
            let mut comps = Vec::new();
            for _ in 0..k {
                comps.push(b.component(2 + rng.below(2))); // 2..3 vertices
            }
            let pairs = 2 + rng.below(4);
            for _ in 0..pairs {
                let i = rng.below(k);
                let mut j = rng.below(k);
                while j == i {
                    j = rng.below(k);
                }
                let (i, j) = (i.min(j), i.max(j));
                let pick2 = |rng: &mut XorShift, comp: &Vec<Vertex>| {
                    let a = rng.below(comp.len());
                    let mut b2 = rng.below(comp.len());
                    while b2 == a {
                        b2 = rng.below(comp.len());
                    }
                    (comp[a], comp[b2])
                };
                let (fi, ti) = pick2(&mut rng, &comps[i]);
                let (fj, tj) = pick2(&mut rng, &comps[j]);
                b.pair(i, fi, ti, j, fj, tj);
            }
            let inst = b.build().unwrap();
            let baseline = inst.find_reachable_deadlock().deadlock.is_some();
            let v = verdict(&inst);
            let expected = if baseline {
                Verdict::Holds
            } else {
                Verdict::Fails
            };
            assert_eq!(v, expected, "random system diverged from baseline");
            if baseline {
                holds += 1;
            } else {
                fails += 1;
            }
        }
        // The workload should exercise both outcomes.
        assert!(holds > 0, "no deadlocking system generated");
        assert!(fails > 0, "no deadlock-free system generated");
    }
}
