//! **Theorem 5.3**: `QSAT_2k` reduces to the complement of semi-soundness
//! for `F(A+, φ−, k)`, establishing `Π^P_2k`-hardness (and PSPACE-hardness
//! for unbounded depth, Cor. 5.4).
//!
//! For `∃x¹ ∀y¹ … ∃xᵏ ∀yᵏ ψ` (k blocks of n variables each) the schema is
//! the paper's ∀-tower: the root carries `uc` ("under construction"), the
//! first existential block's variables, the *last* universal block's
//! variables `yᵏ`, and a chain of `∀ᵢ` nodes; each `∀ᵢ` node carries the
//! next existential block `xⁱ⁺¹`, the previous universal block `yⁱ`, and
//! `∀ᵢ₊₁`.
//!
//! Access rules (all positive): everything except `uc` and the `yᵏⱼ` is
//! addable/deletable while `uc` is present at the root (`r/uc`, i.e. a
//! `../…/uc` chain from the touched node); `yᵏⱼ` are always free; `uc` is
//! deletable but re-addable only when still present — deleting `uc`
//! freezes everything but `yᵏ` forever.
//!
//! The completion formula is
//! `uc ∨ (∨ᵢ ∀₁/…/∀ᵢ₋₁[¬∀ᵢ[ηᵢ₁ ∧ … ∧ ηᵢₙ]]) ∨ ∀₁/…/∀ₖ₋₁[¬ψ′]` with
//! `ηᵢⱼ = yⁱⱼ ↔ r/yᵏⱼ`: an `uc`-free instance is completable iff some
//! `yᵏ`-assignment exposes a *missing* universal branch or a *failing*
//! matrix leaf — impossible exactly when the instance encodes a winning
//! strategy for the QSAT instance.

use idar_core::{
    AccessRules, Formula, GuardedForm, InstNodeId, Instance, PathExpr, Right, SchemaBuilder,
    SchemaNodeId, Update,
};
use idar_logic::prop::{Assignment, Var};
use idar_logic::qbf::{Qbf, Quantifier};
use std::sync::Arc;

/// Label of the "under construction" marker.
pub const UC: &str = "uc";

/// Label of an existential variable `xⁱⱼ` (1-based block index in the
/// paper; 0-based here).
pub fn x_label(i: usize, j: usize) -> String {
    format!("x{i}_{j}")
}

/// Label of a universal variable `yⁱⱼ`.
pub fn y_label(i: usize, j: usize) -> String {
    format!("y{i}_{j}")
}

/// Label of the chain node `∀ᵢ` (0-based: `A0` is the paper's `∀1`).
pub fn forall_label(i: usize) -> String {
    format!("A{i}")
}

/// A compiled Thm 5.3 instance: the guarded form plus the shape data
/// needed to build runs and witness states.
#[derive(Debug, Clone)]
pub struct Qsat2kForm {
    pub form: GuardedForm,
    pub k: usize,
    pub n: usize,
}

/// Why a QBF cannot be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotQsat2k(pub String);

impl std::fmt::Display for NotQsat2k {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not a QSAT_2k instance: {}", self.0)
    }
}
impl std::error::Error for NotQsat2k {}

/// Compile a `QSAT_2k` QBF (produced by [`Qbf::qsat2k`] or shaped like it:
/// alternating ∃/∀ blocks of equal size `n`, starting existential) into
/// the Thm 5.3 guarded form. The form is **not** semi-sound iff the QBF
/// evaluates to true.
pub fn reduce(qbf: &Qbf) -> Result<Qsat2kForm, NotQsat2k> {
    let (k, n) = validate_shape(qbf)?;

    // ---- Schema -----------------------------------------------------
    let mut b = SchemaBuilder::new();
    b.child(SchemaNodeId::ROOT, UC).expect("fresh");
    for j in 0..n {
        b.child(SchemaNodeId::ROOT, &x_label(0, j)).expect("fresh");
        b.child(SchemaNodeId::ROOT, &y_label(k - 1, j))
            .expect("fresh");
    }
    // The ∀ chain: A0 under the root, A(i+1) under A(i); under A(i):
    // x(i+1) vars and y(i) vars.
    let mut chain_parent = SchemaNodeId::ROOT;
    let mut chain_nodes = Vec::new();
    for i in 0..k.saturating_sub(1) {
        let a = b.child(chain_parent, &forall_label(i)).expect("fresh");
        chain_nodes.push(a);
        for j in 0..n {
            b.child(a, &x_label(i + 1, j)).expect("fresh");
            b.child(a, &y_label(i, j)).expect("fresh");
        }
        chain_parent = a;
    }
    let schema = Arc::new(b.build());

    // ---- Access rules (positive) -------------------------------------
    let mut rules = AccessRules::new(&schema);
    for e in schema.edge_ids() {
        let label = schema.label(e).to_string();
        let parent_depth = schema.node_depth(e) as usize - 1;
        let is_yk = (0..n).any(|j| label == y_label(k - 1, j));
        let guard = if label == UC {
            // A(add, uc) = uc; A(del, uc) = true.
            rules.set(Right::Add, e, Formula::label(UC));
            rules.set(Right::Del, e, Formula::True);
            continue;
        } else if is_yk {
            Formula::True
        } else {
            // `r/uc` from the parent node: climb to the root, check uc.
            Formula::Path(PathExpr::ancestors_then(parent_depth, UC))
        };
        rules.set(Right::Add, e, guard.clone());
        rules.set(Right::Del, e, guard);
    }

    // ---- Completion formula -------------------------------------------
    let mut disjuncts: Vec<Formula> = vec![Formula::label(UC)];
    // ∨_{i=1}^{k-1} ∀1/…/∀i−1[¬∀i[η_i1 ∧ … ∧ η_in]]
    // 0-based: for chain level c in 0..k-1 (the paper's ∀_{c+1}), the
    // prefix is A0/…/A(c−1) and the body checks the A(c) child.
    for c in 0..k.saturating_sub(1) {
        // η_cj at the A(c) node (depth c+1): y_label(c, j) ↔ root's yk_j.
        let eta = Formula::conj((0..n).map(|j| {
            let yij = Formula::label(&y_label(c, j));
            let root_yk = Formula::Path(PathExpr::ancestors_then(c + 1, &y_label(k - 1, j)));
            yij.iff(root_yk)
        }));
        let body = Formula::Path(PathExpr::Filter(
            Box::new(PathExpr::Label(forall_label(c))),
            Box::new(eta.not()),
        ))
        .not();
        disjuncts.push(at_chain_depth(c, body));
    }
    // ∀1/…/∀k−1[¬ψ′]
    let psi_prime = substitute_matrix(&qbf.matrix, k, n);
    disjuncts.push(at_chain_depth(k - 1, psi_prime.not()));
    let completion = Formula::disj(disjuncts);

    // ---- Initial instance: root + uc ----------------------------------
    let mut initial = Instance::empty(schema.clone());
    initial
        .add_child_by_label(InstNodeId::ROOT, UC)
        .expect("uc exists");

    Ok(Qsat2kForm {
        form: GuardedForm::new(schema, rules, initial, completion),
        k,
        n,
    })
}

/// Wrap `body` under the chain path `A0/…/A(depth−1)[body]` (an *exists*
/// over chain nodes at that depth); `depth = 0` evaluates at the root.
fn at_chain_depth(depth: usize, body: Formula) -> Formula {
    if depth == 0 {
        return body;
    }
    let mut path = PathExpr::Label(forall_label(depth - 1));
    path = PathExpr::Filter(Box::new(path), Box::new(body));
    for c in (0..depth - 1).rev() {
        path = PathExpr::Seq(Box::new(PathExpr::Label(forall_label(c))), Box::new(path));
    }
    Formula::Path(path)
}

/// ψ′: the matrix with each variable replaced by its `../…/label` path,
/// as read from a chain node at depth `k−1`.
fn substitute_matrix(matrix: &idar_logic::PropFormula, k: usize, n: usize) -> Formula {
    use idar_logic::PropFormula as P;
    match matrix {
        P::Const(true) => Formula::True,
        P::Const(false) => Formula::False,
        P::Var(v) => var_path(*v, k, n),
        P::Not(g) => substitute_matrix(g, k, n).not(),
        P::And(a, b) => substitute_matrix(a, k, n).and(substitute_matrix(b, k, n)),
        P::Or(a, b) => substitute_matrix(a, k, n).or(substitute_matrix(b, k, n)),
    }
}

/// The path for a [`Qbf::qsat2k`]-numbered variable, from a depth-(k−1)
/// chain node: `xⁱⱼ ↦ ../^{k−i}/xᵢⱼ` (paper's 1-based i; our block index
/// is 0-based so the climb is `k−1−i`), `yⁱⱼ (i<k−1) ↦ ../^{k−2−i}/yᵢⱼ`,
/// `yᵏ⁻¹ⱼ ↦ ../^{k−1}/y(k−1)ⱼ`.
fn var_path(v: Var, k: usize, n: usize) -> Formula {
    let idx = v.index();
    let block_pair = idx / (2 * n);
    let within = idx % (2 * n);
    if within < n {
        // x-variable of block pair `block_pair` — lives at depth
        // `block_pair` (under the root for 0).
        let ups = (k - 1) - block_pair;
        Formula::Path(PathExpr::ancestors_then(ups, &x_label(block_pair, within)))
    } else {
        let j = within - n;
        if block_pair == k - 1 {
            // yᵏ: at the root.
            Formula::Path(PathExpr::ancestors_then(k - 1, &y_label(k - 1, j)))
        } else {
            // yⁱ lives under ∀ᵢ (depth block_pair + 1).
            let ups = (k - 1) - (block_pair + 1);
            Formula::Path(PathExpr::ancestors_then(ups, &y_label(block_pair, j)))
        }
    }
}

fn validate_shape(qbf: &Qbf) -> Result<(usize, usize), NotQsat2k> {
    if qbf.blocks.is_empty() || !qbf.blocks.len().is_multiple_of(2) {
        return Err(NotQsat2k(format!(
            "need an even, non-zero number of blocks, got {}",
            qbf.blocks.len()
        )));
    }
    let n = qbf.blocks[0].1.len();
    if n == 0 {
        return Err(NotQsat2k("empty first block".into()));
    }
    for (i, (q, vars)) in qbf.blocks.iter().enumerate() {
        let expected = if i % 2 == 0 {
            Quantifier::Exists
        } else {
            Quantifier::ForAll
        };
        if *q != expected {
            return Err(NotQsat2k(format!("block {i} is {q}, expected {expected}")));
        }
        if vars.len() != n {
            return Err(NotQsat2k(format!(
                "block {i} has {} vars, expected {n}",
                vars.len()
            )));
        }
        for (j, v) in vars.iter().enumerate() {
            let expected_var = if i % 2 == 0 {
                Qbf::x(i / 2, j, n)
            } else {
                Qbf::y(i / 2, j, n)
            };
            if *v != expected_var {
                return Err(NotQsat2k(format!(
                    "block {i} var {j} is {v}, expected the qsat2k numbering"
                )));
            }
        }
    }
    Ok((qbf.blocks.len() / 2, n))
}

// ---------------------------------------------------------------------------
// Witness machinery (for validation and the benchmark harness)
// ---------------------------------------------------------------------------

/// If the QBF is true, build the proof's incompletable witness instance:
/// the full strategy tree (winning x-choices above every combination of
/// universal values), without `uc`. Returns `None` if the QBF is false.
pub fn strategy_witness(q: &Qsat2kForm, qbf: &Qbf) -> Option<Instance> {
    let mut inst = Instance::empty(q.form.schema().clone());
    let mut a = Assignment::all_false(qbf.var_count().max(1));
    if build_strategy(q, qbf, 0, InstNodeId::ROOT, &mut a, &mut inst) {
        Some(inst)
    } else {
        None
    }
}

/// Recursively: choose x-block `i` (existentially) under `node`, then for
/// all 2ⁿ assignments of y-block `i` create a `∀ᵢ₊₁` child (or, at the
/// last level, check the matrix).
fn build_strategy(
    q: &Qsat2kForm,
    qbf: &Qbf,
    i: usize,
    node: InstNodeId,
    a: &mut Assignment,
    inst: &mut Instance,
) -> bool {
    let n = q.n;
    // Existential choice for x-block i: try all 2ⁿ.
    'choice: for bits in 0u64..(1 << n) {
        for j in 0..n {
            a.set(Qbf::x(i, j, n), bits >> j & 1 == 1);
        }
        // Snapshot for rollback.
        let checkpoint = inst.clone();
        // Materialise the chosen x values under `node`.
        for j in 0..n {
            if bits >> j & 1 == 1 {
                inst.add_child_by_label(node, &x_label(i, j))
                    .expect("schema has x label here");
            }
        }
        // Universal sweep over y-block i.
        for ybits in 0u64..(1 << n) {
            for j in 0..n {
                a.set(Qbf::y(i, j, n), ybits >> j & 1 == 1);
            }
            if i == q.k - 1 {
                // Innermost: the matrix must hold.
                if !qbf.matrix.eval(a) {
                    *inst = checkpoint;
                    continue 'choice;
                }
            } else {
                // Create the ∀ᵢ child representing this y-assignment.
                let child = inst
                    .add_child_by_label(node, &forall_label(i))
                    .expect("chain label");
                for j in 0..n {
                    if ybits >> j & 1 == 1 {
                        inst.add_child_by_label(child, &y_label(i, j))
                            .expect("y label");
                    }
                }
                if !build_strategy(q, qbf, i + 1, child, a, inst) {
                    *inst = checkpoint;
                    continue 'choice;
                }
            }
        }
        return true;
    }
    false
}

/// A replayable run from the initial instance to an arbitrary `uc`-free
/// target state: add every node of the target top-down while `uc` is
/// present, then delete `uc`.
pub fn run_to(q: &Qsat2kForm, target: &Instance) -> Vec<Update> {
    let mut run = Vec::new();
    let mut inst = q.form.initial().clone();
    // Map target nodes to the ids they get in the replayed instance.
    let mut map = std::collections::HashMap::new();
    map.insert(InstNodeId::ROOT, InstNodeId::ROOT);
    for tn in target.live_nodes() {
        if tn == InstNodeId::ROOT {
            continue;
        }
        let parent = map[&target.parent(tn).expect("non-root")];
        let u = Update::Add {
            parent,
            edge: target.schema_node(tn),
        };
        let new = q
            .form
            .apply(&mut inst, &u)
            .expect("additions allowed while uc present")
            .expect("addition returns id");
        map.insert(tn, new);
        run.push(u);
    }
    let uc_node = inst
        .children_with_label(InstNodeId::ROOT, UC)
        .next()
        .expect("uc still present");
    let du = Update::Del { node: uc_node };
    q.form.apply(&mut inst, &du).expect("uc deletable");
    run.push(du);
    run
}

/// **Exact** completability for an `uc`-free state of a Thm 5.3 form.
///
/// Once `uc` is gone, only the root-level `yᵏ` variables can change, so
/// completability reduces to a sweep over the `2ⁿ` `yᵏ`-assignments.
pub fn ucfree_completable(q: &Qsat2kForm, state: &Instance) -> bool {
    assert!(
        state
            .children_with_label(InstNodeId::ROOT, UC)
            .next()
            .is_none(),
        "state must be uc-free"
    );
    let n = q.n;
    for bits in 0u64..(1 << n) {
        let mut s = state.clone();
        // Install the yᵏ assignment: remove existing copies, add wanted.
        for j in 0..n {
            let label = y_label(q.k - 1, j);
            let existing: Vec<InstNodeId> =
                s.children_with_label(InstNodeId::ROOT, &label).collect();
            if bits >> j & 1 == 1 {
                if existing.is_empty() {
                    s.add_child_by_label(InstNodeId::ROOT, &label)
                        .expect("yk label");
                }
            } else {
                for e in existing {
                    s.remove_leaf(e).expect("yk nodes are leaves");
                }
            }
        }
        if q.form.is_complete(&s) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::fragment::{classify, DepthClass, Polarity};
    use idar_logic::gen::random_qsat2k;
    use idar_logic::PropFormula;
    use idar_solver::semisound::{semisoundness, SemisoundnessOptions};
    use idar_solver::Verdict;

    fn p_var(v: Var) -> PropFormula {
        PropFormula::Var(v)
    }

    #[test]
    fn qbf_oracles_agree_on_reduction_inputs() {
        // The Thm 5.3 family's expected verdicts come from a QBF oracle;
        // the recursive evaluator and the CDCL assumption-based expansion
        // must agree on exactly the instances this reduction consumes.
        for seed in 0..15 {
            for (k, n) in [(1, 1), (1, 2), (2, 1)] {
                let qbf = random_qsat2k(seed, k, n, 3 * k * n);
                assert_eq!(
                    qbf.solve_via_sat(),
                    qbf.eval(),
                    "seed {seed} k={k} n={n}: {qbf}"
                );
            }
        }
    }

    #[test]
    fn fragment_is_positive_depth_k() {
        let qbf = Qbf::qsat2k(2, 1, p_var(Qbf::x(0, 0, 1)));
        let q = reduce(&qbf).unwrap();
        let f = classify(&q.form);
        assert_eq!(f.access, Polarity::Positive);
        assert_eq!(f.completion, Polarity::Unrestricted);
        assert_eq!(f.depth, DepthClass::K(2));
    }

    #[test]
    fn k1_matches_qbf_via_exact_semisoundness() {
        // Depth-1 case: the exact depth-1 solver decides semi-soundness;
        // it must disagree with the QBF's truth value (true ⇒ not
        // semi-sound).
        let n = 1;
        let x = p_var(Qbf::x(0, 0, n));
        let y = p_var(Qbf::y(0, 0, n));
        let cases = [
            (x.clone().or(y.clone()), true),   // ∃x∀y x∨y : true
            (x.clone().and(y.clone()), false), // ∃x∀y x∧y : false
            (x.clone().or(y.clone().not()), true),
            (
                (x.clone().and(y.clone())).or(x.clone().not().and(y.clone().not())),
                false, // x ↔ y cannot be forced by x alone
            ),
        ];
        for (matrix, qbf_true) in cases {
            let qbf = Qbf::qsat2k(1, n, matrix.clone());
            assert_eq!(qbf.eval(), qbf_true, "baseline {matrix}");
            let q = reduce(&qbf).unwrap();
            let r = semisoundness(&q.form, &SemisoundnessOptions::default());
            let expected = if qbf_true {
                Verdict::Fails
            } else {
                Verdict::Holds
            };
            assert_eq!(r.verdict, expected, "matrix {matrix}");
        }
    }

    #[test]
    fn k1_n2_random_matrices() {
        for seed in 0..25 {
            let qbf = random_qsat2k(seed, 1, 2, 7);
            let q = reduce(&qbf).unwrap();
            let r = semisoundness(&q.form, &SemisoundnessOptions::default());
            let expected = if qbf.eval() {
                Verdict::Fails
            } else {
                Verdict::Holds
            };
            assert_eq!(r.verdict, expected, "seed {seed}");
        }
    }

    #[test]
    fn k2_strategy_witness_is_reachable_and_incompletable() {
        let n = 1;
        // ∃x¹ ∀y¹ ∃x² ∀y²: (x¹ ∨ y¹) ∧ (x² ↔ y¹) — true: pick x¹ = 1 and
        // copy y¹ into x².
        let x1 = p_var(Qbf::x(0, 0, n));
        let y1 = p_var(Qbf::y(0, 0, n));
        let x2 = p_var(Qbf::x(1, 0, n));
        let y2 = p_var(Qbf::y(1, 0, n));
        let iff = (x2.clone().and(y1.clone())).or(x2.clone().not().and(y1.clone().not()));
        let matrix = (x1.clone().or(y1.clone()))
            .and(iff)
            .and(y2.clone().or(y2.not()));
        let qbf = Qbf::qsat2k(2, n, matrix);
        assert!(qbf.eval(), "baseline should be true");
        let q = reduce(&qbf).unwrap();

        let witness = strategy_witness(&q, &qbf).expect("true QBF has a strategy");
        // The witness is genuinely reachable: replay the constructed run.
        let run = run_to(&q, &witness);
        let replay = q.form.replay(&run).unwrap();
        let reached = replay.last();
        // The reached state equals the witness (up to isomorphism).
        assert_eq!(reached.iso_code(), witness.iso_code());
        // And it is exactly incompletable (2ⁿ yᵏ-sweep).
        assert!(!ucfree_completable(&q, reached));
        // Semi-soundness therefore fails.
        assert!(!q.form.is_complete(reached));
    }

    #[test]
    fn k2_false_qbf_has_no_strategy_and_sampled_states_complete() {
        let n = 1;
        // ∃x¹ ∀y¹ ∃x² ∀y²: x² ↔ y² — no x² choice survives both y² values.
        let x2 = p_var(Qbf::x(1, 0, n));
        let y2 = p_var(Qbf::y(1, 0, n));
        let matrix = (x2.clone().and(y2.clone())).or(x2.not().and(y2.not()));
        let qbf = Qbf::qsat2k(2, n, matrix);
        assert!(!qbf.eval());
        let q = reduce(&qbf).unwrap();
        assert!(strategy_witness(&q, &qbf).is_none());

        // Sample uc-free states (all "attempted strategies" with a single
        // ∀ child) — each must remain completable, as the proof predicts.
        for x1_present in [false, true] {
            for y1_present in [false, true] {
                for x2_present in [false, true] {
                    let mut s = Instance::empty(q.form.schema().clone());
                    if x1_present {
                        s.add_child_by_label(InstNodeId::ROOT, &x_label(0, 0))
                            .unwrap();
                    }
                    let a = s
                        .add_child_by_label(InstNodeId::ROOT, &forall_label(0))
                        .unwrap();
                    if y1_present {
                        s.add_child_by_label(a, &y_label(0, 0)).unwrap();
                    }
                    if x2_present {
                        s.add_child_by_label(a, &x_label(1, 0)).unwrap();
                    }
                    assert!(
                        ucfree_completable(&q, &s),
                        "state should be completable (missing-branch or failing-matrix disjunct)"
                    );
                }
            }
        }
    }

    #[test]
    fn uc_deletion_freezes_everything_but_yk() {
        let n = 1;
        let qbf = Qbf::qsat2k(2, n, p_var(Qbf::x(0, 0, n)));
        let q = reduce(&qbf).unwrap();
        let root = InstNodeId::ROOT;
        let mut inst = q.form.initial().clone();
        // While uc present: x1 addable.
        let x1_edge = q.form.schema().resolve(&x_label(0, 0)).unwrap();
        assert!(q.form.is_allowed(
            &inst,
            &Update::Add {
                parent: root,
                edge: x1_edge
            }
        ));
        // Delete uc.
        let uc_node = inst.children_with_label(root, UC).next().unwrap();
        q.form
            .apply(&mut inst, &Update::Del { node: uc_node })
            .unwrap();
        // uc cannot come back (A(add, uc) = uc).
        let uc_edge = q.form.schema().resolve(UC).unwrap();
        assert!(!q.form.is_allowed(
            &inst,
            &Update::Add {
                parent: root,
                edge: uc_edge
            }
        ));
        // x1 frozen; yk still free.
        assert!(!q.form.is_allowed(
            &inst,
            &Update::Add {
                parent: root,
                edge: x1_edge
            }
        ));
        let yk_edge = q.form.schema().resolve(&y_label(1, 0)).unwrap();
        assert!(q.form.is_allowed(
            &inst,
            &Update::Add {
                parent: root,
                edge: yk_edge
            }
        ));
    }

    #[test]
    fn shape_validation() {
        let bad = Qbf::new(vec![(Quantifier::ForAll, vec![Var(0)])], p_var(Var(0)));
        assert!(reduce(&bad).is_err());
    }
}
