//! **Theorem 5.6**: SAT reduces to the *complement* of semi-soundness for
//! `F(A+, φ+, 1)`, establishing coNP-hardness (and, with Cor. 5.7,
//! coNP-completeness).
//!
//! Construction, for a 3-CNF ψ over variables `x₁ … xₖ`:
//!
//! * two root labels per variable — `xᵢ` ("xᵢ is true") and `x̄ᵢ`
//!   (rendered `nxᵢ`, "xᵢ is false");
//! * the initial instance contains *all* `2k` nodes;
//! * `A(del, xᵢ) = x̄ᵢ` and `A(del, x̄ᵢ) = xᵢ` — one of each pair can be
//!   deleted, but never both (carving an assignment out of the full set);
//!   `A(add, xᵢ) = xᵢ` — additions are canonical no-ops;
//! * the completion formula is `neg(ψ)`: clauses become conjunctions of
//!   complemented-literal labels, the CNF becomes their disjunction — a
//!   **positive** formula that holds exactly when ψ is *falsified*.
//!
//! A reachable assignment-state is incompletable iff it satisfies ψ (the
//! completion formula is monotone and deletions only shrink the state), so
//! the form fails semi-soundness iff ψ is satisfiable.

use idar_core::{
    AccessRules, Formula, GuardedForm, InstNodeId, Instance, Right, SchemaBuilder, SchemaNodeId,
};
use idar_logic::prop::{Cnf, Lit, Var};
use std::sync::Arc;

/// Label asserting variable `v` is true.
pub fn pos_label(v: Var) -> String {
    format!("x{}", v.0)
}

/// Label asserting variable `v` is false (the paper's `x̄`).
pub fn neg_label(v: Var) -> String {
    format!("nx{}", v.0)
}

/// The label complementing a literal: `neg(xᵢ) = x̄ᵢ`, `neg(¬xᵢ) = xᵢ`.
fn complement_label(l: Lit) -> String {
    if l.positive {
        neg_label(l.var)
    } else {
        pos_label(l.var)
    }
}

/// Compile a CNF into the Thm 5.6 guarded form: in `F(A+, φ+, 1)`, and
/// **not** semi-sound iff the CNF is satisfiable.
pub fn reduce(cnf: &Cnf) -> GuardedForm {
    let mut b = SchemaBuilder::new();
    let mut pos_edges = Vec::with_capacity(cnf.vars);
    let mut neg_edges = Vec::with_capacity(cnf.vars);
    for v in 0..cnf.vars {
        let var = Var(v as u32);
        pos_edges.push(b.child(SchemaNodeId::ROOT, &pos_label(var)).unwrap());
        neg_edges.push(b.child(SchemaNodeId::ROOT, &neg_label(var)).unwrap());
    }
    let schema = Arc::new(b.build());

    let mut rules = AccessRules::new(&schema);
    for v in 0..cnf.vars {
        let var = Var(v as u32);
        // A(del, xᵢ) = x̄ᵢ ; A(add, xᵢ) = xᵢ (and symmetrically).
        rules.set(Right::Del, pos_edges[v], Formula::label(&neg_label(var)));
        rules.set(Right::Add, pos_edges[v], Formula::label(&pos_label(var)));
        rules.set(Right::Del, neg_edges[v], Formula::label(&pos_label(var)));
        rules.set(Right::Add, neg_edges[v], Formula::label(&neg_label(var)));
    }

    // neg(ψ): ∨ over clauses of ∧ over complemented literals.
    let completion = Formula::disj(
        cnf.clauses
            .iter()
            .map(|c| Formula::conj(c.0.iter().map(|&l| Formula::label(&complement_label(l))))),
    );

    // Initial instance: the root with all xᵢ and x̄ᵢ.
    let mut initial = Instance::empty(schema.clone());
    for v in 0..cnf.vars {
        initial.add_child(InstNodeId::ROOT, pos_edges[v]).unwrap();
        initial.add_child(InstNodeId::ROOT, neg_edges[v]).unwrap();
    }

    GuardedForm::new(schema, rules, initial, completion)
}

/// Decode a counterexample instance (a reachable incompletable state) into
/// the satisfying assignment it represents. Variables with both labels
/// still present default to `true` (any completion of the partial
/// assignment satisfies ψ in that case — ψ's satisfied clauses only
/// mention carved-out pairs).
pub fn decode_assignment(inst: &Instance, vars: usize) -> idar_logic::Assignment {
    let mut a = idar_logic::Assignment::all_false(vars);
    for v in 0..vars {
        let var = Var(v as u32);
        let has_neg = inst
            .children_with_label(InstNodeId::ROOT, &neg_label(var))
            .next()
            .is_some();
        a.set(var, !has_neg);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::fragment::{classify, DepthClass, Polarity};
    use idar_logic::sat_solve;
    use idar_solver::semisound::{semisoundness, SemisoundnessOptions};
    use idar_solver::Verdict;

    fn check(cnf: &Cnf) -> (Verdict, Option<Vec<idar_core::Update>>) {
        let g = reduce(cnf);
        let r = semisoundness(&g, &SemisoundnessOptions::default());
        (r.verdict, r.counterexample)
    }

    #[test]
    fn fragment_is_a_plus_phi_plus_depth1() {
        let cnf = Cnf::new(vec![vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]]);
        let f = classify(&reduce(&cnf));
        assert_eq!(f.access, Polarity::Positive);
        assert_eq!(f.completion, Polarity::Positive);
        assert_eq!(f.depth, DepthClass::One);
    }

    #[test]
    fn satisfiable_cnf_breaks_semisoundness() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
            vec![Lit::neg(0), Lit::pos(1), Lit::neg(2)],
        ]);
        assert!(sat_solve(&cnf).is_some());
        let (v, cex) = check(&cnf);
        assert_eq!(v, Verdict::Fails);
        assert!(cex.is_some());
    }

    #[test]
    fn unsatisfiable_cnf_is_semisound() {
        // x ∧ ¬x as 1-literal clauses.
        let cnf = Cnf::new(vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert!(sat_solve(&cnf).is_none());
        let (v, _) = check(&cnf);
        assert_eq!(v, Verdict::Holds);
    }

    #[test]
    fn counterexample_decodes_to_model() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)],
            vec![Lit::neg(0), Lit::pos(1), Lit::pos(2)],
            vec![Lit::neg(2), Lit::pos(1), Lit::neg(0)],
        ]);
        let g = reduce(&cnf);
        let r = semisoundness(&g, &SemisoundnessOptions::default());
        assert_eq!(r.verdict, Verdict::Fails);
        let cex = r.counterexample.unwrap();
        let replay = g.replay(&cex).unwrap();
        let a = decode_assignment(replay.last(), cnf.vars);
        assert!(cnf.eval(&a), "counterexample must decode to a model");
    }

    #[test]
    fn agrees_with_dpll_on_random_instances() {
        for seed in 100..130 {
            let cnf = idar_logic::gen::random_3cnf(seed, 4, 6 + (seed as usize % 10));
            let baseline_sat = sat_solve(&cnf).is_some();
            let (v, _) = check(&cnf);
            let expected = if baseline_sat {
                Verdict::Fails // sat ⇒ not semi-sound
            } else {
                Verdict::Holds
            };
            assert_eq!(v, expected, "seed {seed}: {cnf}");
        }
    }

    #[test]
    fn initial_state_is_completable() {
        // The all-labels state satisfies neg(ψ) for any non-trivial ψ with
        // at least one clause (every complemented label is present).
        let cnf = Cnf::new(vec![vec![Lit::pos(0), Lit::neg(1)]]);
        let g = reduce(&cnf);
        assert!(g.is_complete(g.initial()));
    }
}
