//! **Theorem 5.1**: SAT reduces to completability for `F(A+, φ−, k)`
//! (already at depth 1), establishing NP-hardness.
//!
//! "For every variable x in φ, there is one node labelled x in the schema
//! of the guarded form. All access rules are set to true. The completion
//! formula is the given formula φ. … the guarded form is completable if
//! and only if φ is satisfiable, because the access rules allow any
//! instance that satisfies the schema to be constructed."

use idar_core::{AccessRules, Formula, GuardedForm, Instance, Schema, SchemaBuilder, SchemaNodeId};
use idar_logic::prop::{Cnf, PropFormula, Var};
use std::sync::Arc;

/// The label used for propositional variable `v`.
pub fn var_label(v: Var) -> String {
    format!("v{}", v.0)
}

/// Translate a propositional formula into a path formula over the variable
/// labels (presence of label `vᵢ` ⇔ xᵢ true).
pub fn prop_to_formula(f: &PropFormula) -> Formula {
    match f {
        PropFormula::Const(true) => Formula::True,
        PropFormula::Const(false) => Formula::False,
        PropFormula::Var(v) => Formula::label(&var_label(*v)),
        PropFormula::Not(g) => prop_to_formula(g).not(),
        PropFormula::And(a, b) => prop_to_formula(a).and(prop_to_formula(b)),
        PropFormula::Or(a, b) => prop_to_formula(a).or(prop_to_formula(b)),
    }
}

/// Compile a CNF into the Thm 5.1 guarded form. The result is in
/// `F(A+, φ−, 1)` and is completable iff the CNF is satisfiable.
pub fn reduce(cnf: &Cnf) -> GuardedForm {
    let mut b = SchemaBuilder::new();
    for v in 0..cnf.vars {
        b.child(SchemaNodeId::ROOT, &var_label(Var(v as u32)))
            .expect("distinct variable labels");
    }
    let schema = Arc::new(b.build());
    // "All access rules are set to true."
    let rules = AccessRules::with_default(&schema, Formula::True);
    let completion = prop_to_formula(&PropFormula::from_cnf(cnf));
    let initial = Instance::empty(schema.clone());
    GuardedForm::new(schema, rules, initial, completion)
}

/// Decode a complete instance back into a satisfying assignment.
pub fn decode_assignment(inst: &Instance, vars: usize) -> idar_logic::Assignment {
    let mut a = idar_logic::Assignment::all_false(vars);
    for v in 0..vars {
        let var = Var(v as u32);
        if inst
            .children_with_label(idar_core::InstNodeId::ROOT, &var_label(var))
            .next()
            .is_some()
        {
            a.set(var, true);
        }
    }
    a
}

/// The schema of the reduction, for callers that need it separately.
pub fn schema_for(vars: usize) -> Arc<Schema> {
    let mut b = SchemaBuilder::new();
    for v in 0..vars {
        b.child(SchemaNodeId::ROOT, &var_label(Var(v as u32)))
            .expect("distinct labels");
    }
    Arc::new(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::fragment::{classify, DepthClass, Polarity};
    use idar_logic::prop::Lit;
    use idar_solver::{completability, CompletabilityResult, Verdict};

    fn verdict(cnf: &Cnf) -> CompletabilityResult {
        let g = reduce(cnf);
        completability(&g, &Default::default())
    }

    #[test]
    fn fragment_is_a_plus_phi_minus_depth1() {
        let cnf = Cnf::new(vec![vec![Lit::pos(0), Lit::neg(1)]]);
        let g = reduce(&cnf);
        let f = classify(&g);
        assert_eq!(f.access, Polarity::Positive);
        assert_eq!(f.completion, Polarity::Unrestricted);
        assert_eq!(f.depth, DepthClass::One);
    }

    #[test]
    fn sat_instances_are_completable() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::neg(0), Lit::pos(2)],
        ]);
        assert!(idar_logic::sat_solve(&cnf).is_some());
        let r = verdict(&cnf);
        assert_eq!(r.verdict, Verdict::Holds);
    }

    #[test]
    fn unsat_instances_are_not_completable() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0)],
            vec![Lit::neg(0), Lit::pos(1)],
            vec![Lit::neg(1)],
        ]);
        assert!(idar_logic::sat_solve(&cnf).is_none());
        let r = verdict(&cnf);
        assert_eq!(r.verdict, Verdict::Fails);
    }

    #[test]
    fn witness_run_decodes_to_model() {
        let cnf = Cnf::new(vec![
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::neg(1), Lit::pos(2)],
        ]);
        let g = reduce(&cnf);
        let r = completability(&g, &Default::default());
        let run = r.witness_run.expect("satisfiable");
        let replay = g.replay(&run).unwrap();
        let a = decode_assignment(replay.last(), cnf.vars);
        assert!(cnf.eval(&a), "decoded assignment must satisfy the CNF");
    }

    #[test]
    fn agrees_with_dpll_on_random_instances() {
        for seed in 0..40 {
            let cnf = idar_logic::gen::random_3cnf(seed, 5, 10 + (seed as usize % 15));
            let baseline = idar_logic::sat_solve(&cnf).is_some();
            let r = verdict(&cnf);
            let expected = if baseline {
                Verdict::Holds
            } else {
                Verdict::Fails
            };
            assert_eq!(r.verdict, expected, "seed {seed}: {cnf}");
        }
    }

    #[test]
    fn empty_cnf() {
        let cnf = Cnf::new(vec![]).with_vars(2);
        assert_eq!(verdict(&cnf).verdict, Verdict::Holds);
        let cnf = Cnf::new(vec![vec![]]).with_vars(1);
        assert_eq!(verdict(&cnf).verdict, Verdict::Fails);
    }
}
