//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, used because this workspace builds fully offline.
//!
//! It implements the subset of the criterion API the `idar-bench` benches
//! use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with simple wall-clock
//! median timing instead of criterion's statistical machinery. Results are
//! printed as `<group>/<id>  median <t>  (n samples)` lines.
//!
//! Timing method: one warm-up call, then `sample_size` timed calls; the
//! median is reported. `CRITERION_SHIM_SAMPLES` overrides the sample count
//! globally (useful to smoke-run benches in CI with `=1`).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting a computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter, matching
    /// criterion's `new`.
    pub fn new<F: fmt::Display, P: fmt::Display>(function_id: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` once for warm-up, then `samples` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.results.push(t.elapsed());
        }
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    b.results.sort_unstable();
    let median = b
        .results
        .get(b.results.len() / 2)
        .copied()
        .unwrap_or_default();
    println!("{name:<56} median {median:>12.2?}  ({samples} samples)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark `routine` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, env_samples(self.sample_size), |b| routine(b, input));
        self
    }

    /// Benchmark a closure with no extra input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, env_samples(self.sample_size), routine);
        self
    }

    /// End the group (printing is already done incrementally).
    pub fn finish(&mut self) {}
}

/// The benchmark driver. One instance is threaded through every
/// `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name}");
        BenchmarkGroup {
            name,
            sample_size: env_samples(20),
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&name.to_string(), env_samples(20), routine);
        self
    }
}

/// Collect benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
