//! A minimal, dependency-free stand-in for `proptest`, used because this
//! workspace builds fully offline.
//!
//! It implements the subset of the proptest API the test suites use:
//! [`Strategy`] with `prop_map` / `prop_recursive` / `boxed`, range and
//! tuple strategies, [`collection::vec`], a tiny `[class]{m,n}` string
//! pattern generator, [`Just`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the assert message; the
//!   deterministic per-test seed makes every failure reproducible.
//! * **Generation is uniform** where proptest would bias toward edge
//!   cases.
//!
//! Each `proptest!` test runs `ProptestConfig::cases` cases seeded from a
//! hash of the test's name, so runs are stable across processes and CI.

#![forbid(unsafe_code)]

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xorshift64* generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test-name hash and the case index.
    pub fn for_case(name_hash: u64, case: u32) -> TestRng {
        // SplitMix64 step decorrelates consecutive case indices.
        let mut z = name_hash.wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(u64::from(case) + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        TestRng((z ^ (z >> 31)) | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// FNV-1a hash of a string, for per-test seeds.
pub fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Build recursive structures: `f` receives a strategy for subterms and
    /// returns the strategy for one more level. `depth` bounds nesting;
    /// `_desired_size` and `_expected_branch` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            cur = Union {
                options: vec![self.clone().boxed(), f(cur).boxed()],
            }
            .boxed();
        }
        cur
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: 'static,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies of the same value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from pre-boxed options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// `&'static str` acts as a string strategy for a small regex subset:
/// a sequence of literal chars or `[set]` classes (with `a-z` ranges),
/// each optionally repeated `{m}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pat: &str, rng: &mut TestRng) -> String {
    let bytes = pat.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        // Atom: a char class or a literal character.
        let chars: Vec<char> = if bytes[i] == b'[' {
            let close = pat[i..]
                .find(']')
                .map(|o| i + o)
                .unwrap_or_else(|| panic!("unclosed `[` in pattern {pat:?}"));
            let set = &pat[i + 1..close];
            i = close + 1;
            expand_class(set, pat)
        } else {
            let c = pat[i..].chars().next().expect("in-bounds");
            i += c.len_utf8();
            vec![c]
        };
        // Repetition: {m} or {m,n}; default exactly once.
        let (lo, hi) = if i < bytes.len() && bytes[i] == b'{' {
            let close = pat[i..]
                .find('}')
                .map(|o| i + o)
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pat:?}"));
            let body = &pat[i + 1..close];
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("repeat lower bound"),
                    n.trim().parse::<usize>().expect("repeat upper bound"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("repeat count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(chars[rng.below(chars.len() as u64) as usize]);
        }
    }
    out
}

fn expand_class(set: &str, pat: &str) -> Vec<char> {
    let cs: Vec<char> = set.chars().collect();
    let mut out = Vec::new();
    let mut j = 0;
    while j < cs.len() {
        if j + 2 < cs.len() && cs[j + 1] == '-' {
            let (a, b) = (cs[j] as u32, cs[j + 2] as u32);
            assert!(a <= b, "bad class range in pattern {pat:?}");
            for c in a..=b {
                out.push(char::from_u32(c).expect("valid char range"));
            }
            j += 3;
        } else {
            out.push(cs[j]);
            j += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as a vec length: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }
}

// ---------------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------------

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption fails.
///
/// Expands to an early `return` from the per-case closure the `proptest!`
/// macro wraps each body in.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Define property tests. Supports the `#![proptest_config(...)]` header
/// and any number of `#[test] fn name(arg in strategy, ...) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Strategies are built once and reused across cases.
            let strategies = ($($crate::Strategy::boxed($strat),)+);
            let seed = $crate::name_hash(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(seed, case);
                #[allow(non_snake_case)]
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = strategies;
                    ($($crate::Strategy::generate($arg, &mut rng),)+)
                };
                // The closure gives `prop_assume!` an early-exit target.
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
