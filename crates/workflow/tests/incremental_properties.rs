//! Property tests for the incremental re-analysis layer.
//!
//! Two contracts are exercised end-to-end, across symmetry modes and
//! engines, on real form families from `idar-gen`:
//!
//! * **resume-equivalence** — `Explorer::resume` from *any* state
//!   interned in a `SessionGraph` produces exactly the same
//!   `SearchStats` and goal depth as a cold sequential run on the form
//!   re-rooted at that state's instance (and agrees with the parallel
//!   engine on every engine-invariant observable);
//! * **eviction round-trip** — a `FormManager` whose retained graph is
//!   evicted under a tiny memory budget answers every vet/safe_updates
//!   query identically to a manager that kept its graph.

use idar_gen::builders::subset_lattice;
use idar_gen::scenario::{ChainSpec, ScenarioSpec};
use idar_solver::{
    Budget, ExploreLimits, Explorer, Method, StateId, SymmetryMode, Verdict, VerdictCache,
};
use idar_workflow::manager::{FormManager, UnknownPolicy};
use std::sync::Arc;

/// The forms under test: all close under `ExploreLimits::small()`, so
/// session builds are exact and every retained state is resumable.
fn closing_forms() -> Vec<(String, idar_core::GuardedForm)> {
    vec![
        ("subset_lattice(3)".into(), subset_lattice(3)),
        ("subset_lattice(4)".into(), subset_lattice(4)),
        (
            "approval_chain(3,2,3)".into(),
            ScenarioSpec::unconstrained(ChainSpec::simple(3, 2, 3))
                .build("chain")
                .form,
        ),
    ]
}

/// Resume from every retained state must match a cold sequential run
/// re-rooted at that state — exact `SearchStats` equality and equal goal
/// depth — under both symmetry modes. The parallel engine is held to the
/// engine-invariant subset: state count, closure, goal presence/depth.
#[test]
fn resume_equals_cold_run_from_every_state() {
    let limits = ExploreLimits::small();
    for (name, form) in closing_forms() {
        for mode in [SymmetryMode::Reduced, SymmetryMode::Plain] {
            let mut session = Explorer::new(&form, limits)
                .with_symmetry(mode)
                .build_session();
            assert!(session.exact(), "{name} {mode:?}: build must close");
            let retained = session.retained_states();
            for i in 0..retained {
                let id = StateId(i as u32);
                let warm = Explorer::new(&form, limits)
                    .with_symmetry(mode)
                    .with_threads(1)
                    .resume(&mut session, id, |x| form.is_complete(x));
                let rerooted = form.with_initial(session.store().get(id).clone());
                let cold = Explorer::new(&rerooted, limits)
                    .with_symmetry(mode)
                    .with_threads(1)
                    .find(|x| rerooted.is_complete(x));
                assert_eq!(warm.stats, cold.stats, "{name} {mode:?} state {i}");
                assert_eq!(
                    warm.goal_run.as_ref().map(Vec::len),
                    cold.goal_run.as_ref().map(Vec::len),
                    "{name} {mode:?} state {i}: goal depth"
                );
                let par = Explorer::new(&rerooted, limits)
                    .with_symmetry(mode)
                    .with_threads(4)
                    .find(|x| rerooted.is_complete(x));
                assert_eq!(
                    warm.stats.states, par.stats.states,
                    "{name} {mode:?} state {i}: parallel state count"
                );
                assert_eq!(
                    warm.stats.closed, par.stats.closed,
                    "{name} {mode:?} state {i}: parallel closure"
                );
                assert_eq!(
                    warm.goal_run.as_ref().map(Vec::len),
                    par.goal_run.as_ref().map(Vec::len),
                    "{name} {mode:?} state {i}: parallel goal depth"
                );
            }
            // An exact session answers queries without growing.
            assert_eq!(session.retained_states(), retained, "{name} {mode:?}");
        }
    }
}

/// Resuming never invents states: on a truncated build the session only
/// grows toward the same space the cold run explores, and re-resuming
/// from the root with the full budget reaches closure.
#[test]
fn truncated_session_converges_to_the_cold_space() {
    let form = subset_lattice(4);
    let tight = ExploreLimits {
        max_states: 5,
        ..ExploreLimits::small()
    };
    let mut session = Explorer::new(&form, tight).build_session();
    assert!(!session.exact());
    let cold = Explorer::new(&form, ExploreLimits::small())
        .with_threads(1)
        .find(|x| form.is_complete(x));
    let warm = Explorer::new(&form, ExploreLimits::small())
        .with_threads(1)
        .resume(&mut session, StateId(0), |x| form.is_complete(x));
    assert_eq!(warm.stats, cold.stats);
    assert_eq!(
        warm.goal_run.as_ref().map(Vec::len),
        cold.goal_run.as_ref().map(Vec::len)
    );
    assert_eq!(session.retained_states(), cold.stats.states);
}

/// Drive one manager with a retained graph and one whose graph was
/// evicted by a tiny memory budget through the same edit walk: every
/// safe-update set must agree at every step, while the provenance
/// counters prove the two actually took different paths.
#[test]
fn eviction_then_recompute_round_trips() {
    let form = subset_lattice(3);
    let budget = Budget::with_limits(ExploreLimits::small());
    let mut retained = FormManager::new(form.clone(), budget.clone(), UnknownPolicy::Reject)
        .with_cache(Arc::new(VerdictCache::new()));
    let mut evicted = FormManager::new(form, budget, UnknownPolicy::Reject)
        .with_cache(Arc::new(VerdictCache::new()))
        .with_max_retained_states(1);

    let mut steps = 0;
    while !retained.is_complete() && steps < 16 {
        let a = retained.safe_updates();
        let b = evicted.safe_updates();
        assert_eq!(a, b, "step {steps}: safe sets diverge");
        let Some(u) = a.first().copied() else { break };
        retained.submit(u).expect("safe update accepted");
        evicted.submit(u).expect("safe update accepted");
        steps += 1;
    }
    assert!(retained.is_complete() && evicted.is_complete());

    let r = retained.recompute_stats();
    assert_eq!(r.cold_solves, 0, "retained manager must never go cold");
    assert!(r.graph_hits > 0);
    assert!(retained.retained_states().is_some());

    let e = evicted.recompute_stats();
    assert_eq!(e.graph_hits + e.frontier_extends, 0);
    assert!(e.cold_solves > 0, "evicted manager must fall back to cold");
    assert!(evicted.retained_states().is_none());
}

/// Eviction triggered *mid-session*: a truncated bounded-exploration
/// graph grows past the memory budget while frontier extensions answer
/// queries, the manager flips to cold, and every answer before and after
/// the flip agrees with an always-cold reference manager.
#[test]
fn mid_session_eviction_stays_equivalent_to_cold() {
    let form = subset_lattice(4);
    let mut budget = Budget::with_limits(ExploreLimits {
        max_states: 8,
        ..ExploreLimits::small()
    });
    budget.force_method = Some(Method::BoundedExploration);

    // Accept `Unknown` so the walk proceeds even where the tight budget
    // truncates — the point is provenance, not verdict strength.
    let mut mgr = FormManager::new(form.clone(), budget.clone(), UnknownPolicy::Accept)
        .with_cache(Arc::new(VerdictCache::new()))
        .with_max_retained_states(10);
    let mut reference = FormManager::new(form, budget, UnknownPolicy::Accept)
        .with_cache(Arc::new(VerdictCache::new()))
        .with_max_retained_states(0);

    let mut evicted_at = None;
    for step in 0..16 {
        if reference.is_complete() {
            break;
        }
        let safe = reference.safe_updates();
        assert_eq!(mgr.safe_updates(), safe, "step {step}: safe sets diverge");
        if evicted_at.is_none() && mgr.retained_states().is_none() {
            evicted_at = Some(step);
        }
        let Some(u) = safe.first().copied() else {
            break;
        };
        mgr.submit(u).expect("safe update accepted");
        reference.submit(u).expect("safe update accepted");
    }
    assert!(
        evicted_at.is_some(),
        "the truncated graph must outgrow max_retained_states during the walk"
    );
    let stats = mgr.recompute_stats();
    assert!(stats.frontier_extends > 0, "pre-eviction path was warm");
    assert!(stats.cold_solves > 0, "post-eviction path is cold");
}

/// `Verdict` round-trip sanity for the session paths: a graph-hit
/// annotation and a frontier-extension agree with each other on the same
/// query when both are available (exact graph ⇒ both defined).
#[test]
fn annotation_agrees_with_resume_on_exact_graphs() {
    let form = subset_lattice(4);
    let limits = ExploreLimits::small();
    let explorer = Explorer::new(&form, limits).with_threads(1);
    let mut session = explorer.build_session();
    session.annotate(&form);
    assert!(session.exact());
    for i in 0..session.retained_states() {
        let id = StateId(i as u32);
        let annotated = session.verdict_of(id).expect("exact graph is annotated");
        let out = explorer.resume(&mut session, id, |x| form.is_complete(x));
        let resumed = match (out.goal_run.is_some(), out.stats.closed) {
            (true, _) => Verdict::Holds,
            (false, true) => Verdict::Fails,
            (false, false) => Verdict::Unknown,
        };
        assert_eq!(annotated, resumed, "state {i}");
    }
}
