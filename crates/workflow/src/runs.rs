//! Enumeration of complete runs (Def. 3.11).
//!
//! A workflow's *behaviour* is its set of complete runs. For finite (or
//! finitely-explored) state graphs this module enumerates them — useful
//! for form designers ("show me every way this form can be finished"),
//! for diffing two rule sets, and for the soundness analysis's event
//! coverage.
//!
//! Enumeration is over *simple* paths in the state graph (no state
//! revisited within one run): with loops a workflow has infinitely many
//! complete runs, but every complete run's state sequence contains a
//! simple complete run, so simple paths capture behavioural variety
//! without the infinity.

use crate::WorkflowGraph;
use idar_core::{GuardedForm, Update};
use idar_solver::explore::ExploreLimits;

/// Options for run enumeration.
#[derive(Debug, Clone, Copy)]
pub struct EnumerateOptions {
    /// Stop after this many complete runs.
    pub max_runs: usize,
    /// Ignore runs longer than this many updates.
    pub max_len: usize,
    /// Exploration limits for building the state graph.
    pub limits: ExploreLimits,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions {
            max_runs: 64,
            max_len: 32,
            limits: ExploreLimits::small(),
        }
    }
}

/// The enumeration result.
#[derive(Debug, Clone)]
pub struct RunSet {
    /// Complete runs, as replayable update sequences, shortest first.
    pub runs: Vec<Vec<Update>>,
    /// True if enumeration stopped at `max_runs`/`max_len` rather than
    /// exhausting all simple complete paths of the (explored) graph.
    pub truncated: bool,
    /// True if the underlying state graph itself was exhaustive.
    pub graph_closed: bool,
}

/// Enumerate simple complete runs of `form`.
///
/// Implementation note: the DFS walks *instances*, not the prebuilt state
/// graph. Graph edges store updates whose node ids belong to the one
/// instance the graph kept per isomorphism class; replaying them along a
/// *different* path to the same class would mix id spaces. Walking real
/// instances keeps every emitted run natively replayable; the graph is
/// still used as the completability-pruning oracle (by isomorphism code).
pub fn enumerate_complete_runs(form: &GuardedForm, opts: &EnumerateOptions) -> RunSet {
    let graph = WorkflowGraph::build(form, opts.limits);
    let completable: std::collections::HashMap<String, bool> = graph
        .states()
        .iter()
        .enumerate()
        .map(|(i, s)| (s.iso_code(), graph.is_completable_state(i)))
        .collect();

    let mut runs: Vec<Vec<Update>> = Vec::new();
    let mut truncated = false;
    let initial = form.initial().clone();
    let mut on_path = vec![initial.iso_code()];
    let mut path: Vec<Update> = Vec::new();
    dfs(
        form,
        &completable,
        &initial,
        &mut on_path,
        &mut path,
        &mut runs,
        &mut truncated,
        opts,
    );
    runs.sort_by_key(|r| r.len());
    RunSet {
        runs,
        truncated,
        graph_closed: graph.closed(),
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    form: &GuardedForm,
    completable: &std::collections::HashMap<String, bool>,
    inst: &idar_core::Instance,
    on_path: &mut Vec<String>,
    path: &mut Vec<Update>,
    runs: &mut Vec<Vec<Update>>,
    truncated: &mut bool,
    opts: &EnumerateOptions,
) {
    if form.is_complete(inst) {
        // A complete state may still have outgoing behaviour, but the run
        // ends at first completion — matching Def. 3.11's "complete run"
        // (the last instance satisfies φ).
        runs.push(path.clone());
        return;
    }
    if path.len() >= opts.max_len {
        *truncated = true;
        return;
    }
    for u in form.allowed_updates(inst) {
        if runs.len() >= opts.max_runs {
            // More branches existed but the run budget is spent.
            *truncated = true;
            return;
        }
        let mut next = inst.clone();
        form.apply_unchecked(&mut next, &u)
            .expect("allowed update applies");
        let code = next.iso_code();
        if on_path.contains(&code) {
            continue; // simple paths only
        }
        // Prune branches that cannot complete at all (or left the explored
        // graph — outside it we cannot vouch for completability).
        if !completable.get(&code).copied().unwrap_or(false) {
            continue;
        }
        on_path.push(code);
        path.push(u);
        dfs(
            form,
            completable,
            &next,
            on_path,
            path,
            runs,
            truncated,
            opts,
        );
        path.pop();
        on_path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, Instance, Right, Schema};
    use std::sync::Arc;

    fn two_path_form() -> GuardedForm {
        // Completion a ∧ b; a and b can be added in either order: exactly
        // two complete runs.
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(
            Right::Add,
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
        );
        rules.set(
            Right::Add,
            schema.resolve("b").unwrap(),
            Formula::parse("!b").unwrap(),
        );
        GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::parse("a & b").unwrap(),
        )
    }

    #[test]
    fn enumerates_both_orders() {
        let g = two_path_form();
        let rs = enumerate_complete_runs(&g, &EnumerateOptions::default());
        assert_eq!(rs.runs.len(), 2);
        assert!(!rs.truncated);
        assert!(rs.graph_closed);
        for r in &rs.runs {
            assert!(g.is_complete_run(r));
            assert_eq!(r.len(), 2);
        }
    }

    #[test]
    fn runs_end_at_first_completion() {
        // With completion `a`, adding b after a is possible but runs end
        // at the first complete instance.
        let g = two_path_form().with_completion(Formula::parse("a").unwrap());
        let rs = enumerate_complete_runs(&g, &EnumerateOptions::default());
        // Either immediately a, or b first then a.
        assert_eq!(rs.runs.len(), 2);
        assert_eq!(rs.runs[0].len(), 1);
        assert_eq!(rs.runs[1].len(), 2);
    }

    #[test]
    fn truncation_reported() {
        let g = two_path_form();
        let rs = enumerate_complete_runs(
            &g,
            &EnumerateOptions {
                max_runs: 1,
                ..Default::default()
            },
        );
        assert_eq!(rs.runs.len(), 1);
        assert!(rs.truncated);
    }

    #[test]
    fn incompletable_form_has_no_runs() {
        let g = two_path_form().with_completion(Formula::parse("a & zz").unwrap());
        // zz is not even in the schema: parse at completion level is fine,
        // it just never holds.
        let rs = enumerate_complete_runs(&g, &EnumerateOptions::default());
        assert!(rs.runs.is_empty());
        assert!(!rs.truncated);
    }

    #[test]
    fn leave_application_run_variety() {
        // The leave form (capped to one period) completes via approve or
        // via reject(+reason) — the enumeration must find runs with both
        // decisions.
        let g = idar_core::leave::example_3_12();
        let rs = enumerate_complete_runs(
            &g,
            &EnumerateOptions {
                max_runs: 400,
                max_len: 14,
                limits: ExploreLimits {
                    multiplicity_cap: Some(1),
                    max_states: 50_000,
                    ..ExploreLimits::small()
                },
            },
        );
        assert!(!rs.runs.is_empty());
        let mut saw_approve = false;
        let mut saw_reject = false;
        for r in &rs.runs {
            let last = g.replay(r).unwrap();
            if idar_core::formula::holds_at_root(last.last(), &Formula::parse("d[a]").unwrap()) {
                saw_approve = true;
            }
            if idar_core::formula::holds_at_root(last.last(), &Formula::parse("d[r]").unwrap()) {
                saw_reject = true;
            }
        }
        assert!(saw_approve, "no approving run found");
        assert!(saw_reject, "no rejecting run found");
    }
}
