//! Workflow-level correctness analysis.
//!
//! Footnote 1 of the paper: semi-soundness "is a weaker version of the
//! usual notion of soundness for workflow nets which also requires that
//! each event occurs in at least one possible run of the workflow". This
//! module implements that stronger notion: a form is **sound** when it is
//! semi-sound *and* every schema-level event (an `add` or `del` on a
//! schema edge that any rule permits) actually occurs on some complete
//! run. Events that can never occur on a complete run are *dead* — in a
//! form-based WIS they are fields or retractions the designer wired up
//! but no user can ever meaningfully exercise.

use crate::{Event, WorkflowGraph};
use idar_core::{GuardedForm, Right};
use idar_solver::explore::ExploreLimits;
use idar_solver::semisound::{semisoundness, SemisoundnessOptions};
use idar_solver::{completability, CompletabilityOptions, Verdict};
use std::collections::BTreeSet;

/// The full analysis report for a guarded form.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Def. 3.13.
    pub completability: Verdict,
    /// Def. 3.14.
    pub semisoundness: Verdict,
    /// Footnote 1 soundness: semi-sound and no dead events. `Unknown`
    /// whenever either ingredient is unknown.
    pub soundness: Verdict,
    /// Events that occur on at least one complete run within the explored
    /// graph.
    pub live_events: BTreeSet<Event>,
    /// Declared events (a non-`false` rule exists) that never occur on a
    /// complete run. Exact when the exploration closed.
    pub dead_events: BTreeSet<Event>,
    /// Whether the event analysis covered the whole reachable space.
    pub events_exact: bool,
}

/// Analyse a guarded form within the given exploration limits.
pub fn analyse(form: &GuardedForm, limits: ExploreLimits) -> Analysis {
    let completability = completability(form, &CompletabilityOptions::with_limits(limits)).verdict;
    let semi = semisoundness(form, &SemisoundnessOptions::with_limits(limits)).verdict;

    let w = WorkflowGraph::build(form, limits);
    // An event occurrence s —u→ t lies on a complete run iff t is
    // completable (s is reachable by construction and anything completable
    // extends to completion).
    let mut live_events = BTreeSet::new();
    for i in 0..w.state_count() {
        for (u, j) in w.successors(i) {
            if w.is_completable_state(j.index()) {
                live_events.insert(w.event_of(i, u));
            }
        }
    }
    // Declared events: rules that are not constant-false.
    let mut dead_events = BTreeSet::new();
    for e in form.schema().edge_ids() {
        for right in [Right::Add, Right::Del] {
            if form.rules().get(right, e) != &idar_core::Formula::False {
                let ev = Event { right, edge: e };
                if !live_events.contains(&ev) {
                    dead_events.insert(ev);
                }
            }
        }
    }

    let events_exact = w.closed();
    let soundness = match (semi, dead_events.is_empty(), events_exact) {
        (Verdict::Fails, _, _) => Verdict::Fails,
        (Verdict::Holds, false, true) => Verdict::Fails,
        (Verdict::Holds, true, true) => Verdict::Holds,
        _ => Verdict::Unknown,
    };

    Analysis {
        completability,
        semisoundness: semi,
        soundness,
        live_events,
        dead_events,
        events_exact,
    }
}

/// Render an analysis as a human-readable report (what the fb-wis would
/// show a form designer whose form was rejected).
pub fn report(form: &GuardedForm, a: &Analysis) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let frag = idar_core::fragment::classify(form);
    let row = idar_core::fragment::table1_row(frag);
    let _ = writeln!(out, "fragment:       {frag}");
    let _ = writeln!(
        out,
        "theory:         completability {}, semi-soundness {}",
        row.completability, row.semisoundness
    );
    let _ = writeln!(out, "completability: {}", a.completability);
    let _ = writeln!(out, "semi-soundness: {}", a.semisoundness);
    let _ = writeln!(out, "soundness:      {}", a.soundness);
    if !a.dead_events.is_empty() {
        let _ = writeln!(out, "dead events ({}):", a.dead_events.len());
        for ev in &a.dead_events {
            let _ = writeln!(out, "  {} {}", ev.right, form.schema().path_of(ev.edge));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, Instance, Schema};
    use std::sync::Arc;

    fn form(schema: &str, rules: &[(&str, &str, &str)], completion: &str) -> GuardedForm {
        let schema = Arc::new(Schema::parse(schema).unwrap());
        let mut table = AccessRules::new(&schema);
        for (l, add, del) in rules {
            table.set_both(
                schema.resolve(l).unwrap(),
                Formula::parse(add).unwrap(),
                Formula::parse(del).unwrap(),
            );
        }
        let init = Instance::empty(schema.clone());
        GuardedForm::new(schema, table, init, Formula::parse(completion).unwrap())
    }

    #[test]
    fn sound_form() {
        // a then b, a deletable before b; completion a ∧ b. Every declared
        // event occurs on some complete run.
        let g = form(
            "a, b",
            &[("a", "!a", "!b"), ("b", "a & !b", "false")],
            "a & b",
        );
        let a = analyse(&g, ExploreLimits::small());
        assert_eq!(a.completability, Verdict::Holds);
        assert_eq!(a.semisoundness, Verdict::Holds);
        assert_eq!(a.soundness, Verdict::Holds);
        assert!(a.dead_events.is_empty());
        // add a, del a, add b = 3 live events.
        assert_eq!(a.live_events.len(), 3);
    }

    #[test]
    fn semisound_but_not_sound() {
        // `c` is addable but adding it never helps and no complete run
        // contains it… make c block nothing (semi-sound) but completion
        // not mention it, and c frozen once added — c's event occurs on
        // runs that still complete, so to make it dead, make c *presence*
        // incompatible with completion: completion = a ∧ ¬c, c deletable
        // never ⇒ adding c kills completability ⇒ not semi-sound. Instead:
        // make the DELETE of b dead: b can be deleted only after
        // completion-blocking c… simplest dead event: del b allowed only
        // when c present, but c can never be added (add c = false).
        let g = form(
            "a, b, c",
            &[
                ("a", "!a", "false"),
                ("b", "a & !b", "c"),
                ("c", "false", "false"),
            ],
            "a & b",
        );
        let a = analyse(&g, ExploreLimits::small());
        assert_eq!(a.semisoundness, Verdict::Holds);
        assert_eq!(a.soundness, Verdict::Fails);
        // The dead event is `del b` (declared with guard c, never
        // enabled). `add c` is constant false, hence not declared.
        assert_eq!(a.dead_events.len(), 1);
        let dead = a.dead_events.iter().next().unwrap();
        assert_eq!(dead.right, Right::Del);
        assert_eq!(g.schema().path_of(dead.edge), "b");
    }

    #[test]
    fn unsound_because_not_semisound() {
        let g = form(
            "g, t",
            &[("g", "!t & !g", "false"), ("t", "!t", "false")],
            "g",
        );
        let a = analyse(&g, ExploreLimits::small());
        assert_eq!(a.semisoundness, Verdict::Fails);
        assert_eq!(a.soundness, Verdict::Fails);
    }

    #[test]
    fn report_renders() {
        let g = form(
            "a, b",
            &[("a", "!a", "!b"), ("b", "a & !b", "false")],
            "a & b",
        );
        let a = analyse(&g, ExploreLimits::small());
        let r = report(&g, &a);
        assert!(r.contains("fragment:"));
        assert!(r.contains("semi-soundness: holds"));
    }

    #[test]
    fn leave_application_analysis() {
        // The paper's Sec. 3.5 variant is completable but not semi-sound;
        // the analysis must say so (with a multiplicity cap to keep the
        // space finite).
        let g = idar_core::leave::section_3_5_variant();
        let limits = ExploreLimits {
            multiplicity_cap: Some(1),
            max_states: 50_000,
            ..ExploreLimits::small()
        };
        let a = analyse(&g, limits);
        assert_eq!(a.completability, Verdict::Holds);
        assert_eq!(a.semisoundness, Verdict::Fails);
        assert_eq!(a.soundness, Verdict::Fails);
    }
}
