//! # idar-workflow
//!
//! The workflow *implied* by a guarded form, materialised.
//!
//! The paper's central observation is that instance-dependent access rules
//! implicitly define a workflow — "the data-flow implies the control-flow"
//! — and that this workflow can be analysed automatically. This crate is
//! the layer an fb-wis (form-based web information system) would actually
//! run:
//!
//! * [`WorkflowGraph`] — the reachability graph of a form (states =
//!   instances up to isomorphism, edges = allowed updates), with run
//!   extraction and DOT export;
//! * [`analysis`] — workflow-level properties: completability and
//!   semi-soundness verdicts, *full* soundness (footnote 1: semi-soundness
//!   plus "each event occurs in at least one possible run of the
//!   workflow"), and dead-event reporting;
//! * [`manager`] — the online *form manager* of Sec. 3.5: "a form manager
//!   might disallow any updates that lead to such an instance from which
//!   completion is not possible";
//! * [`petri`] — the footnote-1 bridge: depth-1 forms as 1-safe Petri
//!   nets whose reachability graph coincides with the canonical state
//!   space (the workflow-net soundness vocabulary, made executable).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod manager;
pub mod petri;
pub mod runs;

use idar_core::{GuardedForm, Instance, Right, SchemaNodeId, Update};
use idar_solver::explore::{ExploreLimits, Explorer, StateGraph};
use idar_solver::store::StateId;
use std::fmt::Write as _;

/// The reachability graph of a guarded form, with form-level conveniences
/// layered over the raw solver graph.
#[derive(Debug, Clone)]
pub struct WorkflowGraph {
    graph: StateGraph,
    complete: Vec<bool>,
    /// `completable[i]`: state `i` can reach a complete state *within the
    /// explored subgraph*. Exact when `closed()`.
    completable: Vec<bool>,
}

/// The schema-level event an update realises: which edge, which right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Event {
    pub right: Right,
    pub edge: SchemaNodeId,
}

impl WorkflowGraph {
    /// Explore `form` within `limits` and annotate the result.
    ///
    /// Uses the explorer's default engine — the parallel layered frontier
    /// when the `parallel` feature is on and more than one core is
    /// available. Use [`WorkflowGraph::build_with_threads`] to pin the
    /// worker count (e.g. `1` for a fully sequential build).
    pub fn build(form: &GuardedForm, limits: ExploreLimits) -> WorkflowGraph {
        Self::build_with_threads(form, limits, idar_solver::default_threads())
    }

    /// [`WorkflowGraph::build`] with an explicit explorer thread count.
    pub fn build_with_threads(
        form: &GuardedForm,
        limits: ExploreLimits,
        threads: usize,
    ) -> WorkflowGraph {
        let graph = Explorer::new(form, limits).with_threads(threads).graph();
        let n = graph.state_count();
        let complete: Vec<bool> = graph.states().iter().map(|s| form.is_complete(s)).collect();
        // Backward reachability from complete states.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, _, j) in graph.succ.iter() {
            rev[j.index()].push(i.index());
        }
        let mut completable = complete.clone();
        let mut queue: std::collections::VecDeque<usize> = complete
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| i)
            .collect();
        while let Some(j) = queue.pop_front() {
            for &i in &rev[j] {
                if !completable[i] {
                    completable[i] = true;
                    queue.push_back(i);
                }
            }
        }
        WorkflowGraph {
            graph,
            complete,
            completable,
        }
    }

    /// Number of explored states.
    pub fn state_count(&self) -> usize {
        self.graph.state_count()
    }

    /// Number of explored transitions.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Did the exploration cover the whole reachable space?
    pub fn closed(&self) -> bool {
        self.graph.stats.closed
    }

    /// The state instances (index 0 = initial).
    pub fn states(&self) -> &[Instance] {
        self.graph.states()
    }

    /// Is state `i` complete?
    pub fn is_complete_state(&self, i: usize) -> bool {
        self.complete[i]
    }

    /// Can state `i` reach a complete state (within the explored graph)?
    pub fn is_completable_state(&self, i: usize) -> bool {
        self.completable[i]
    }

    /// Outgoing `(update, successor)` edges of state `i`.
    pub fn successors(&self, i: usize) -> &[(Update, StateId)] {
        self.graph.successors(i)
    }

    /// A replayable run from the initial instance to state `i`.
    pub fn run_to(&self, i: usize) -> Vec<Update> {
        self.graph.run_to(i)
    }

    /// The schema-level event of a graph edge.
    pub fn event_of(&self, state: usize, update: &Update) -> Event {
        match update {
            Update::Add { edge, .. } => Event {
                right: Right::Add,
                edge: *edge,
            },
            Update::Del { node } => Event {
                right: Right::Del,
                edge: self.graph.state(state).schema_node(*node),
            },
        }
    }

    /// Render the graph in Graphviz DOT. Complete states are doubly
    /// circled, incompletable ones filled red; edges carry the schema
    /// event.
    pub fn to_dot(&self, form: &GuardedForm) -> String {
        let mut out = String::from("digraph workflow {\n  rankdir=LR;\n");
        for (i, s) in self.graph.states().iter().enumerate() {
            let label = if s.live_count() == 1 {
                "{}".to_string()
            } else {
                s.iso_code()
            };
            let shape = if self.complete[i] {
                "doublecircle"
            } else {
                "circle"
            };
            let fill = if self.completable[i] {
                "white"
            } else {
                "indianred1"
            };
            let _ = writeln!(
                out,
                "  s{i} [label=\"{label}\", shape={shape}, style=filled, fillcolor={fill}];"
            );
        }
        for (i, u, j) in self.graph.succ.iter() {
            let ev = self.event_of(i.index(), &u);
            let _ = writeln!(
                out,
                "  s{} -> {j} [label=\"{} {}\"];",
                i.index(),
                ev.right,
                form.schema().path_of(ev.edge)
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, Schema};
    use std::sync::Arc;

    pub(crate) fn toggle_form() -> GuardedForm {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set_both(
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
            Formula::parse("!b").unwrap(),
        );
        rules.set(
            Right::Add,
            schema.resolve("b").unwrap(),
            Formula::parse("a & !b").unwrap(),
        );
        let init = idar_core::Instance::empty(schema.clone());
        GuardedForm::new(schema, rules, init, Formula::parse("a & b").unwrap())
    }

    #[test]
    fn graph_shape() {
        // b needs a, so {b} alone is unreachable, and deleting a out of
        // {a,b} is blocked by ¬b: exactly {}, {a}, {a,b}.
        let g = toggle_form();
        let w = WorkflowGraph::build(&g, ExploreLimits::small());
        assert!(w.closed());
        assert_eq!(w.state_count(), 3);
        // {}→{a} (add a), {a}→{} (del a), {a}→{a,b} (add b); {a,b} is
        // terminal (b frozen, a blocked by ¬b).
        assert_eq!(w.edge_count(), 3);
    }

    #[test]
    fn graph_states_exact() {
        let g = toggle_form();
        let w = WorkflowGraph::build(&g, ExploreLimits::small());
        assert_eq!(w.state_count(), 3);
        let complete: Vec<bool> = (0..3).map(|i| w.is_complete_state(i)).collect();
        assert_eq!(complete.iter().filter(|&&c| c).count(), 1);
        // All states completable (the form is semi-sound).
        assert!((0..3).all(|i| w.is_completable_state(i)));
    }

    #[test]
    fn runs_replay() {
        let g = toggle_form();
        let w = WorkflowGraph::build(&g, ExploreLimits::small());
        for i in 0..w.state_count() {
            let run = w.run_to(i);
            let r = g.replay(&run).unwrap();
            assert!(r.last().isomorphic(&w.states()[i]));
        }
    }

    #[test]
    fn dot_renders() {
        let g = toggle_form();
        let w = WorkflowGraph::build(&g, ExploreLimits::small());
        let dot = w.to_dot(&g);
        assert!(dot.starts_with("digraph workflow {"));
        assert!(dot.contains("doublecircle")); // the complete state
        assert!(dot.contains("add a"));
        assert!(dot.ends_with("}\n"));
    }
}
