//! A Petri-net view of depth-1 guarded forms.
//!
//! The paper defines semi-soundness as "a weaker version of the usual
//! notion of soundness for workflow nets" (footnote 1, citing van der
//! Aalst's *The application of Petri nets to workflow management*). This
//! module makes the connection executable: a depth-1 guarded form
//! translates into a **1-safe Petri net** whose reachability graph is
//! isomorphic to the form's canonical state space (Lemma 4.3), so the
//! workflow-net notions — markings, enabled transitions, boundedness,
//! liveness — become directly available for the forms the paper analyses.
//!
//! Encoding: each root label `l` becomes a *complementary place pair*
//! `l⁺` ("l present") / `l⁻` ("l absent"); exactly one of the two is
//! marked, so the net is 1-safe by construction. Expanding each guard
//! into plain arc structure would need one transition per satisfying
//! marking (exponentially many), so guards stay symbolic instead: a
//! [`Transition`] carries the single token flip it performs plus the
//! access-rule formula, and enabledness = structural token check ∧ guard
//! evaluation — a self-modifying-net-style folding that keeps the net
//! linear in the form while preserving the reachability graph exactly.

use idar_core::{Formula, GuardedForm, Right};
use idar_solver::depth1::{Depth1Error, Depth1System};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// A place: `Present(i)` / `Absent(i)` for label bit `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Place {
    Present(u8),
    Absent(u8),
}

/// A transition: flip one label, guarded by the rule formula.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Human-readable name, e.g. `add a` / `del a`.
    pub name: String,
    /// Consumed place (must hold a token).
    pub input: Place,
    /// Produced place.
    pub output: Place,
    /// The access-rule guard, evaluated on the marking (symbolic part of
    /// the self-modifying-net folding).
    pub guard: Formula,
    guard_bit: u8,
    adds: bool,
}

/// A marking: the set of labels present (bit `i` ⇔ token on `Present(i)`,
/// and by 1-safety no token on `Absent(i)`).
pub type Marking = u64;

/// The Petri net of a depth-1 guarded form.
#[derive(Debug, Clone)]
pub struct PetriNet {
    labels: Vec<String>,
    pub transitions: Vec<Transition>,
    initial: Marking,
    system: Depth1System,
}

impl PetriNet {
    /// Translate a depth-1 guarded form.
    pub fn from_depth1(form: &GuardedForm) -> Result<PetriNet, Depth1Error> {
        let system = Depth1System::new(form)?;
        let labels: Vec<String> = system.label_names().to_vec();
        let mut transitions = Vec::new();
        for (i, l) in labels.iter().enumerate() {
            let edge = form.schema().resolve(l).expect("depth-1 labels resolve");
            transitions.push(Transition {
                name: format!("add {l}"),
                input: Place::Absent(i as u8),
                output: Place::Present(i as u8),
                guard: form.rules().get(Right::Add, edge).clone(),
                guard_bit: i as u8,
                adds: true,
            });
            transitions.push(Transition {
                name: format!("del {l}"),
                input: Place::Present(i as u8),
                output: Place::Absent(i as u8),
                guard: form.rules().get(Right::Del, edge).clone(),
                guard_bit: i as u8,
                adds: false,
            });
        }
        Ok(PetriNet {
            initial: system.initial_state(),
            labels,
            transitions,
            system,
        })
    }

    /// Number of places (two per label).
    pub fn place_count(&self) -> usize {
        self.labels.len() * 2
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        self.initial
    }

    /// Does `m` put a token on `p`? (1-safety: `Present` ⇔ not `Absent`.)
    pub fn marked(&self, m: Marking, p: Place) -> bool {
        match p {
            Place::Present(i) => m >> i & 1 == 1,
            Place::Absent(i) => m >> i & 1 == 0,
        }
    }

    /// Is transition `t` enabled at `m` (token on input ∧ guard holds)?
    pub fn enabled(&self, m: Marking, t: &Transition) -> bool {
        if !self.marked(m, t.input) {
            return false;
        }
        // Guard evaluation piggy-backs on the canonical-state system: the
        // same moves are legal in both views (that is the whole point).
        self.system.successors(m).iter().any(|(mv, _)| match mv {
            idar_solver::depth1::Depth1Move::Add(i) => t.adds && *i == t.guard_bit,
            idar_solver::depth1::Depth1Move::Del(i) => !t.adds && *i == t.guard_bit,
        })
    }

    /// Fire `t` at `m` (caller must check enabledness).
    pub fn fire(&self, m: Marking, t: &Transition) -> Marking {
        match t.output {
            Place::Present(i) => m | 1 << i,
            Place::Absent(i) => m & !(1 << i),
        }
    }

    /// All reachable markings.
    pub fn reachable_markings(&self) -> HashSet<Marking> {
        let mut seen = HashSet::new();
        seen.insert(self.initial);
        let mut queue = VecDeque::new();
        queue.push_back(self.initial);
        while let Some(m) = queue.pop_front() {
            for t in &self.transitions {
                if self.enabled(m, t) {
                    let n = self.fire(m, t);
                    if seen.insert(n) {
                        queue.push_back(n);
                    }
                }
            }
        }
        seen
    }

    /// The net is 1-safe by construction; this verifies the invariant on
    /// the reachable markings (each label has exactly one of its two
    /// places marked — trivially true in the bitset encoding, exposed for
    /// the tests that treat the net as a net).
    pub fn is_one_safe(&self) -> bool {
        // Complementary pairs share one bit: structurally 1-safe.
        true
    }

    /// *Dead transitions*: never enabled at any reachable marking. These
    /// are exactly the dead events of the footnote-1 soundness check.
    pub fn dead_transitions(&self) -> Vec<&Transition> {
        let reachable = self.reachable_markings();
        self.transitions
            .iter()
            .filter(|t| !reachable.iter().any(|&m| self.enabled(m, t)))
            .collect()
    }

    /// Render the net in Graphviz DOT (places as circles, transitions as
    /// boxes).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph petri {\n  rankdir=LR;\n");
        for (i, l) in self.labels.iter().enumerate() {
            let m0p = if self.marked(self.initial, Place::Present(i as u8)) {
                "&bull;"
            } else {
                ""
            };
            let m0a = if self.marked(self.initial, Place::Absent(i as u8)) {
                "&bull;"
            } else {
                ""
            };
            let _ = writeln!(out, "  p{i} [label=\"{l}+ {m0p}\", shape=circle];");
            let _ = writeln!(out, "  a{i} [label=\"{l}- {m0a}\", shape=circle];");
        }
        for (j, t) in self.transitions.iter().enumerate() {
            let _ = writeln!(out, "  t{j} [label=\"{}\", shape=box];", t.name);
            let place_id = |p: Place| match p {
                Place::Present(i) => format!("p{i}"),
                Place::Absent(i) => format!("a{i}"),
            };
            let _ = writeln!(out, "  {} -> t{j};", place_id(t.input));
            let _ = writeln!(out, "  t{j} -> {};", place_id(t.output));
        }
        out.push_str("}\n");
        out
    }

    /// Compare the net's reachability graph with the canonical-state
    /// system's (they must coincide — used as a law in tests).
    pub fn agrees_with_canonical_system(&self) -> bool {
        let net: HashSet<Marking> = self.reachable_markings();
        let mut canon = HashSet::new();
        let mut queue = VecDeque::new();
        canon.insert(self.system.initial_state());
        queue.push_back(self.system.initial_state());
        while let Some(s) = queue.pop_front() {
            for (_, t) in self.system.successors(s) {
                if canon.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        net == canon
    }

    /// Marking → label-set rendering for diagnostics.
    pub fn render_marking(&self, m: Marking) -> String {
        let present: Vec<&str> = self
            .labels
            .iter()
            .enumerate()
            .filter(|(i, _)| m >> i & 1 == 1)
            .map(|(_, l)| l.as_str())
            .collect();
        format!("{{{}}}", present.join(","))
    }
}

impl fmt::Display for PetriNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "petri net: {} places, {} transitions, initial {}",
            self.place_count(),
            self.transitions.len(),
            self.render_marking(self.initial)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Instance, Schema};
    use std::sync::Arc;

    fn form(rules: &[(&str, &str, &str)], initial: &str, completion: &str) -> GuardedForm {
        let schema = Arc::new(Schema::parse("a, b, c").unwrap());
        let mut table = AccessRules::new(&schema);
        for (l, add, del) in rules {
            table.set_both(
                schema.resolve(l).unwrap(),
                Formula::parse(add).unwrap(),
                Formula::parse(del).unwrap(),
            );
        }
        let init = Instance::parse(schema.clone(), initial).unwrap();
        GuardedForm::new(schema, table, init, Formula::parse(completion).unwrap())
    }

    #[test]
    fn net_shape() {
        let g = form(&[("a", "!a", "true"), ("b", "a", "false")], "", "a & b");
        let net = PetriNet::from_depth1(&g).unwrap();
        assert_eq!(net.place_count(), 6);
        assert_eq!(net.transitions.len(), 6);
        assert!(net.is_one_safe());
        assert_eq!(net.render_marking(net.initial_marking()), "{}");
    }

    #[test]
    fn reachability_matches_canonical_system() {
        let cases: Vec<Vec<(&str, &str, &str)>> = vec![
            vec![("a", "!a", "true"), ("b", "a", "false")],
            vec![
                ("a", "b", "true"),
                ("b", "!b", "a"),
                ("c", "a & b", "false"),
            ],
            vec![
                ("a", "true", "true"),
                ("b", "true", "true"),
                ("c", "!a", "b"),
            ],
        ];
        for rules in cases {
            let g = form(&rules, "", "a");
            let net = PetriNet::from_depth1(&g).unwrap();
            assert!(net.agrees_with_canonical_system(), "{rules:?}");
        }
    }

    #[test]
    fn firing_semantics() {
        let g = form(&[("a", "!a", "true")], "", "a");
        let net = PetriNet::from_depth1(&g).unwrap();
        let m0 = net.initial_marking();
        let add_a = net.transitions.iter().find(|t| t.name == "add a").unwrap();
        assert!(net.enabled(m0, add_a));
        let m1 = net.fire(m0, add_a);
        assert!(net.marked(m1, Place::Present(0)));
        // ¬a guard now blocks re-adding.
        assert!(!net.enabled(m1, add_a));
        // Deleting brings the token back.
        let del_a = net.transitions.iter().find(|t| t.name == "del a").unwrap();
        assert!(net.enabled(m1, del_a));
        assert_eq!(net.fire(m1, del_a), m0);
    }

    #[test]
    fn dead_transitions_match_dead_events() {
        // c is declared but never addable (guard references an impossible
        // state) → `add c` is a dead transition.
        let g = form(
            &[
                ("a", "!a", "true"),
                ("b", "a", "false"),
                ("c", "b & !a", "false"),
            ],
            "",
            "a & b",
        );
        // b requires a and a is never deletable once… wait, a's del is
        // `true`: c's guard b ∧ ¬a IS reachable (add a, add b, del a).
        // Use a genuinely impossible guard instead:
        let g2 = form(
            &[
                ("a", "!a", "false"),
                ("b", "a", "false"),
                ("c", "b & !a", "false"),
            ],
            "",
            "a & b",
        );
        let net = PetriNet::from_depth1(&g2).unwrap();
        let dead: Vec<&str> = net
            .dead_transitions()
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        assert!(dead.contains(&"add c"), "dead: {dead:?}");
        // And in the first form c is live:
        let net = PetriNet::from_depth1(&g).unwrap();
        let dead: Vec<&str> = net
            .dead_transitions()
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        assert!(!dead.contains(&"add c"), "dead: {dead:?}");
    }

    #[test]
    fn rejects_deep_forms() {
        let schema = Arc::new(Schema::parse("a(b)").unwrap());
        let g = GuardedForm::new(
            schema.clone(),
            AccessRules::new(&schema),
            Instance::empty(schema),
            Formula::True,
        );
        assert!(PetriNet::from_depth1(&g).is_err());
    }

    #[test]
    fn dot_renders() {
        let g = form(&[("a", "!a", "true")], "a", "a");
        let net = PetriNet::from_depth1(&g).unwrap();
        let dot = net.to_dot();
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("add a"));
    }
}
