//! The online **form manager** of Sec. 3.5.
//!
//! "Obviously, if form completability is a decidable problem, a form
//! manager might disallow any updates that lead to such an instance from
//! which completion is not possible" — this module is that manager: it
//! holds the live instance of a form and vets every incoming update with
//! a completability oracle, rejecting the ones that would strand the
//! workflow.
//!
//! The oracle is the fragment-dispatched solver, so its verdicts carry the
//! usual guarantees: exact in the decidable fragments, three-valued
//! elsewhere. What to do with `Unknown` is a policy decision
//! ([`UnknownPolicy`]); a conservative deployment rejects, an optimistic
//! one accepts.

use idar_core::{GuardedForm, Instance, Update};
use idar_solver::cache::CacheStats;
use idar_solver::{
    analyze_keyed, rules_signature_of, AnalysisKind, AnalysisRequest, CompletabilityOptions,
    RulesSignature, Verdict, VerdictCache,
};
use std::sync::Arc;

/// What the manager does when the oracle cannot decide completability of
/// the successor instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownPolicy {
    /// Reject updates whose successor might be stranded (conservative).
    #[default]
    Reject,
    /// Accept them (optimistic).
    Accept,
}

/// Why an update was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The access rules forbid the update outright (Sec. 3.4 semantics).
    NotAllowed,
    /// The update is allowed but its successor instance cannot be
    /// completed — the manager protects semi-soundness at run time.
    WouldStrand,
    /// The oracle answered `Unknown` under a [`UnknownPolicy::Reject`].
    Undecided,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::NotAllowed => write!(f, "update not allowed by the access rules"),
            Rejection::WouldStrand => {
                write!(f, "update leads to an instance that can never complete")
            }
            Rejection::Undecided => write!(
                f,
                "completability of the successor could not be decided within bounds"
            ),
        }
    }
}

/// A live form session guarded by a completability oracle.
///
/// Every vet routes through the unified analysis pipeline with a
/// [`VerdictCache`], keyed by the *canonical fingerprint* of the
/// successor instance — so re-vetting the same update, or two updates
/// whose successors are isomorphic (a frequent pattern: adding the same
/// field under interchangeable siblings), costs one oracle run instead of
/// many. [`FormManager::safe_updates`] in particular no longer re-solves
/// the oracle per candidate update.
#[derive(Debug, Clone)]
pub struct FormManager {
    form: GuardedForm,
    current: Instance,
    oracle: CompletabilityOptions,
    policy: UnknownPolicy,
    history: Vec<Update>,
    cache: Arc<VerdictCache>,
    /// The memoised rule signature shared by every vet of this session
    /// (the rules never change; only the initial instance does).
    rules_sig: RulesSignature,
    /// Explorer threads granted to each oracle run (`None`: the explorer
    /// default). Layered hosts (e.g. `idar-server`, whose HTTP workers
    /// each drive a manager) pin this to their `split_threads` share so
    /// sessions never oversubscribe the host's budget.
    threads: Option<usize>,
}

impl FormManager {
    /// Open a session on the form's initial instance, with a fresh
    /// verdict cache.
    pub fn new(form: GuardedForm, oracle: CompletabilityOptions, policy: UnknownPolicy) -> Self {
        let current = form.initial().clone();
        let rules_sig = rules_signature_of(&form);
        FormManager {
            form,
            current,
            oracle,
            policy,
            history: Vec::new(),
            cache: Arc::new(VerdictCache::new()),
            rules_sig,
            threads: None,
        }
    }

    /// Share a verdict cache across managers (e.g. many sessions of the
    /// same deployed form behind one server).
    pub fn with_cache(mut self, cache: Arc<VerdictCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Pin the explorer-thread grant of every oracle run this session
    /// makes (thread counts are accounting, never verdict-affecting).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The manager's verdict cache.
    pub fn cache(&self) -> &Arc<VerdictCache> {
        &self.cache
    }

    /// Hit/miss counters of the manager's oracle cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The form this session runs (rules and schema never change; only
    /// the live instance does).
    pub fn form(&self) -> &GuardedForm {
        &self.form
    }

    /// The live instance.
    pub fn current(&self) -> &Instance {
        &self.current
    }

    /// The accepted updates so far (a valid run).
    pub fn history(&self) -> &[Update] {
        &self.history
    }

    /// Is the form complete right now?
    pub fn is_complete(&self) -> bool {
        self.form.is_complete(&self.current)
    }

    /// Vet an update without applying it.
    pub fn vet(&self, update: &Update) -> Result<(), Rejection> {
        if !self.form.is_allowed(&self.current, update) {
            return Err(Rejection::NotAllowed);
        }
        let mut next = self.current.clone();
        self.form
            .apply_unchecked(&mut next, update)
            .expect("allowed update applies");
        let sub = self.form.with_initial(next);
        // The memoised rule signature makes the per-candidate cache key a
        // hash of the successor instance alone.
        let key = VerdictCache::key_with(
            &self.rules_sig,
            &sub,
            AnalysisKind::Completability,
            &self.oracle,
        );
        let mut request = AnalysisRequest::completability(sub).with_budget(self.oracle.clone());
        if let Some(t) = self.threads {
            request = request.with_threads(t);
        }
        match analyze_keyed(&request, &self.cache, &key).verdict {
            Verdict::Holds => Ok(()),
            Verdict::Fails => Err(Rejection::WouldStrand),
            Verdict::Unknown => match self.policy {
                UnknownPolicy::Reject => Err(Rejection::Undecided),
                UnknownPolicy::Accept => Ok(()),
            },
        }
    }

    /// Vet and apply an update.
    pub fn submit(&mut self, update: Update) -> Result<(), Rejection> {
        self.vet(&update)?;
        self.form
            .apply_unchecked(&mut self.current, &update)
            .expect("vetted update applies");
        self.history.push(update);
        Ok(())
    }

    /// The updates the manager would currently accept.
    ///
    /// Each candidate is vetted through the cached oracle: candidates
    /// whose successor instances are isomorphic share one cache entry, so
    /// the oracle runs once per *distinct* successor class (and zero
    /// times on a repeat call) instead of once per candidate.
    pub fn safe_updates(&self) -> Vec<Update> {
        self.form
            .allowed_updates(&self.current)
            .into_iter()
            .filter(|u| self.vet(u).is_ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, InstNodeId, Right, Schema};
    use std::sync::Arc;

    /// The trap form: adding `t` makes completion (g) impossible.
    fn trap_form() -> GuardedForm {
        let schema = Arc::new(Schema::parse("g, t").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(
            Right::Add,
            schema.resolve("g").unwrap(),
            Formula::parse("!t & !g").unwrap(),
        );
        rules.set(
            Right::Add,
            schema.resolve("t").unwrap(),
            Formula::parse("!t").unwrap(),
        );
        let init = Instance::empty(schema.clone());
        GuardedForm::new(schema, rules, init, Formula::parse("g").unwrap())
    }

    #[test]
    fn manager_blocks_the_trap() {
        let form = trap_form();
        let t_edge = form.schema().resolve("t").unwrap();
        let g_edge = form.schema().resolve("g").unwrap();
        let mut mgr = FormManager::new(
            form,
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        );
        // `t` is allowed by the rules but stranding: rejected.
        let err = mgr
            .submit(Update::Add {
                parent: InstNodeId::ROOT,
                edge: t_edge,
            })
            .unwrap_err();
        assert_eq!(err, Rejection::WouldStrand);
        // `g` is fine.
        mgr.submit(Update::Add {
            parent: InstNodeId::ROOT,
            edge: g_edge,
        })
        .unwrap();
        assert!(mgr.is_complete());
        assert_eq!(mgr.history().len(), 1);
    }

    #[test]
    fn safe_updates_hit_the_verdict_cache() {
        // A form whose candidate updates produce isomorphic successors:
        // two interchangeable `p` siblings, each accepting a `b` child.
        let schema = Arc::new(Schema::parse("p(b)").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(
            Right::Add,
            schema.resolve("p").unwrap(),
            Formula::parse("true").unwrap(),
        );
        rules.set(
            Right::Add,
            schema.resolve("p/b").unwrap(),
            Formula::parse("true").unwrap(),
        );
        let init = Instance::parse(schema.clone(), "p, p").unwrap();
        let form = GuardedForm::new(schema, rules, init, Formula::parse("p[b]").unwrap());
        let oracle = CompletabilityOptions::with_limits(idar_solver::ExploreLimits {
            multiplicity_cap: Some(2),
            ..idar_solver::ExploreLimits::small()
        });
        let mgr = FormManager::new(form, oracle, UnknownPolicy::Reject);

        // 3 candidates: add p (root), add b under p₁, add b under p₂. The
        // two b-additions have isomorphic successors, so the cold sweep
        // runs the oracle twice and serves the third vet from the cache.
        let safe = mgr.safe_updates();
        assert_eq!(safe.len(), 3);
        let cold = mgr.cache_stats();
        assert_eq!(cold.misses, 2, "isomorphic successors solve once");
        assert_eq!(cold.hits, 1);

        // A repeat sweep is all hits: the cache-hit rate climbs to 2/3.
        let safe2 = mgr.safe_updates();
        assert_eq!(safe2, safe);
        let warm = mgr.cache_stats();
        assert_eq!(warm.misses, 2, "no new oracle runs");
        assert_eq!(warm.hits, 4);
        assert!(
            warm.hit_rate() > 0.6,
            "cache-hit rate {:.2} below the expected 2/3",
            warm.hit_rate()
        );
    }

    #[test]
    fn safe_updates_exclude_stranding_ones() {
        let form = trap_form();
        let mgr = FormManager::new(
            form.clone(),
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        );
        let all = form.allowed_updates(form.initial());
        assert_eq!(all.len(), 2); // add g, add t
        let safe = mgr.safe_updates();
        assert_eq!(safe.len(), 1); // only add g
    }

    #[test]
    fn disallowed_updates_rejected_before_oracle() {
        let form = trap_form();
        let g_edge = form.schema().resolve("g").unwrap();
        let mut mgr = FormManager::new(
            form,
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        );
        mgr.submit(Update::Add {
            parent: InstNodeId::ROOT,
            edge: g_edge,
        })
        .unwrap();
        // Second g violates ¬g: structural rejection.
        let err = mgr
            .submit(Update::Add {
                parent: InstNodeId::ROOT,
                edge: g_edge,
            })
            .unwrap_err();
        assert_eq!(err, Rejection::NotAllowed);
    }

    #[test]
    fn manager_completes_the_leave_application() {
        // Drive the paper's own example through the manager: every step of
        // the known-good completing run must be accepted.
        let form = idar_core::leave::example_3_12();
        let run = idar_core::leave::complete_run(&form);
        let oracle = CompletabilityOptions::with_limits(idar_solver::ExploreLimits {
            multiplicity_cap: Some(1),
            max_states: 20_000,
            ..idar_solver::ExploreLimits::small()
        });
        let mut mgr = FormManager::new(form, oracle, UnknownPolicy::Accept);
        for u in run {
            mgr.submit(u).unwrap();
        }
        assert!(mgr.is_complete());
    }

    #[test]
    fn manager_protects_the_broken_leave_variant() {
        // Sec. 3.5 variant: the manager must refuse the early `f` that
        // strands the form.
        let form = idar_core::leave::section_3_5_variant();
        let sch = form.schema().clone();
        let oracle = CompletabilityOptions::with_limits(idar_solver::ExploreLimits {
            multiplicity_cap: Some(1),
            max_states: 20_000,
            ..idar_solver::ExploreLimits::small()
        });
        let mut mgr = FormManager::new(form, oracle, UnknownPolicy::Accept);
        let steps = [
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: sch.resolve("a").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(1),
                edge: sch.resolve("a/n").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(1),
                edge: sch.resolve("a/d").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(1),
                edge: sch.resolve("a/p").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(4),
                edge: sch.resolve("a/p/b").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(4),
                edge: sch.resolve("a/p/e").unwrap(),
            },
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: sch.resolve("s").unwrap(),
            },
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: sch.resolve("d").unwrap(),
            },
        ];
        for u in steps {
            mgr.submit(u).unwrap();
        }
        // The stranding early-final:
        let f_edge = sch.resolve("f").unwrap();
        let err = mgr
            .submit(Update::Add {
                parent: InstNodeId::ROOT,
                edge: f_edge,
            })
            .unwrap_err();
        assert_eq!(err, Rejection::WouldStrand);
        // Approving first keeps the workflow alive…
        mgr.submit(Update::Add {
            parent: InstNodeId(8),
            edge: sch.resolve("d/a").unwrap(),
        })
        .unwrap();
        // …and now final is safe.
        mgr.submit(Update::Add {
            parent: InstNodeId::ROOT,
            edge: f_edge,
        })
        .unwrap();
        assert!(mgr.is_complete());
    }
}
