//! The online **form manager** of Sec. 3.5.
//!
//! "Obviously, if form completability is a decidable problem, a form
//! manager might disallow any updates that lead to such an instance from
//! which completion is not possible" — this module is that manager: it
//! holds the live instance of a form and vets every incoming update with
//! a completability oracle, rejecting the ones that would strand the
//! workflow.
//!
//! The oracle is the fragment-dispatched solver, so its verdicts carry the
//! usual guarantees: exact in the decidable fragments, three-valued
//! elsewhere. What to do with `Unknown` is a policy decision
//! ([`UnknownPolicy`]); a conservative deployment rejects, an optimistic
//! one accepts.
//!
//! # Incremental re-analysis
//!
//! For forms the oracle would answer with bounded exploration (or the
//! depth-1 canonical system), the manager retains the explored state
//! graph as a [`SessionGraph`] across edits instead of re-solving cold:
//! the *first* oracle call builds the graph once, and every later vet is
//! either a **graph hit** (the successor is interned in an exact graph —
//! its annotated verdict is a lookup) or a **frontier extension** (the
//! successor is interned in a truncated graph — [`Explorer::resume`]
//! continues the BFS from it, reusing all retained states and logged
//! expansions, with verdicts equal to a cold run by construction). Only
//! successors outside the retained graph, and forms whose oracle method
//! never explores (positive saturation, the NP two-phase solver), take
//! the **cold solve** path — which is byte-for-byte the pre-session
//! pipeline, shared verdict cache included. [`RecomputeStats`] reports
//! the three-way split.
//!
//! Graph-derived verdicts are still published to the shared
//! [`VerdictCache`] through a [`SessionDelta`], so concurrent sessions
//! of the same form benefit; if the graph outgrows the session's memory
//! budget ([`FormManager::with_max_retained_states`]) it is evicted —
//! the delta retracts exactly the entries whose keyed state left the
//! retained subgraph and the session falls back to cold solves.

use idar_core::fragment::{classify, Fragment};
use idar_core::{GuardedForm, Instance, Update};
use idar_solver::cache::CacheStats;
use idar_solver::verdict::SearchStats;
use idar_solver::{
    analyze_keyed, rules_signature_of, select_method, AnalysisKind, AnalysisRequest, CachedVerdict,
    CompletabilityOptions, Explorer, Method, RulesSignature, SessionDelta, SessionGraph, Verdict,
    VerdictCache,
};
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// What the manager does when the oracle cannot decide completability of
/// the successor instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnknownPolicy {
    /// Reject updates whose successor might be stranded (conservative).
    #[default]
    Reject,
    /// Accept them (optimistic).
    Accept,
}

/// Why an update was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The access rules forbid the update outright (Sec. 3.4 semantics).
    NotAllowed,
    /// The update is allowed but its successor instance cannot be
    /// completed — the manager protects semi-soundness at run time.
    WouldStrand,
    /// The oracle answered `Unknown` under a [`UnknownPolicy::Reject`].
    Undecided,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::NotAllowed => write!(f, "update not allowed by the access rules"),
            Rejection::WouldStrand => {
                write!(f, "update leads to an instance that can never complete")
            }
            Rejection::Undecided => write!(
                f,
                "completability of the successor could not be decided within bounds"
            ),
        }
    }
}

/// How the manager's oracle calls were answered, split by provenance:
/// retained-graph lookups, bounded frontier extensions, and cold solves
/// (the latter delegated to the shared-cache pipeline, so a cold solve
/// may itself be a cache hit). Counters are cumulative per manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecomputeStats {
    /// Verdicts answered by an annotation lookup in an exact graph.
    pub graph_hits: u64,
    /// Verdicts answered by resuming the BFS at a retained state.
    pub frontier_extends: u64,
    /// Verdicts delegated to the cold analysis pipeline.
    pub cold_solves: u64,
    /// Cold solves the pre-exploration static screener decided (a
    /// subset of `cold_solves`: the pipeline ran, but answered before
    /// expanding a single state).
    pub screen_decided: u64,
}

impl RecomputeStats {
    /// Total oracle calls recorded.
    pub fn total(&self) -> u64 {
        self.graph_hits + self.frontier_extends + self.cold_solves
    }

    /// Graph hits as a fraction of all oracle calls (0.0 when none).
    pub fn graph_hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.graph_hits as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot — the
    /// per-call (or per-request) provenance delta.
    pub fn minus(&self, earlier: &RecomputeStats) -> RecomputeStats {
        RecomputeStats {
            graph_hits: self.graph_hits.saturating_sub(earlier.graph_hits),
            frontier_extends: self
                .frontier_extends
                .saturating_sub(earlier.frontier_extends),
            cold_solves: self.cold_solves.saturating_sub(earlier.cold_solves),
            screen_decided: self.screen_decided.saturating_sub(earlier.screen_decided),
        }
    }
}

/// Cumulative graph-eviction accounting of one manager: how many times
/// the retained graph was dropped for exceeding the memory budget, and
/// the (approximate) resident bytes each drop freed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionStats {
    /// Retained graphs dropped under the state- or byte-budget.
    pub evictions: u64,
    /// Approximate bytes freed across those drops.
    pub evicted_bytes: u64,
}

/// The retained graph plus the cache entries it published.
#[derive(Debug, Clone)]
struct ActiveSession {
    graph: SessionGraph,
    delta: SessionDelta,
    /// Memoised `graph.approx_bytes()` and the state count it was
    /// computed at — the byte walk is O(states), so it only reruns when
    /// the graph grew.
    bytes: usize,
    bytes_at: usize,
}

impl ActiveSession {
    fn new(graph: SessionGraph) -> ActiveSession {
        let bytes = graph.approx_bytes();
        let bytes_at = graph.retained_states();
        ActiveSession {
            graph,
            delta: SessionDelta::new(),
            bytes,
            bytes_at,
        }
    }

    /// Current approximate resident bytes, recomputed iff the graph grew.
    fn approx_bytes(&mut self) -> usize {
        let n = self.graph.retained_states();
        if n != self.bytes_at {
            self.bytes = self.graph.approx_bytes();
            self.bytes_at = n;
        }
        self.bytes
    }
}

/// Lifecycle of the retained session graph.
#[derive(Debug, Clone)]
enum SessionState {
    /// Graph-eligible, not built yet (builds lazily at the first oracle
    /// call, so opening a session stays cheap).
    Unbuilt,
    /// Retained and answering queries.
    Active(Box<ActiveSession>),
    /// No graph: the oracle method never explores, the build overflowed
    /// the memory budget, or the graph was evicted under query growth.
    Disabled,
}

/// A live form session guarded by a completability oracle.
///
/// Every vet routes through the unified analysis pipeline with a
/// [`VerdictCache`], keyed by the *canonical fingerprint* of the
/// successor instance — so re-vetting the same update, or two updates
/// whose successors are isomorphic (a frequent pattern: adding the same
/// field under interchangeable siblings), costs one oracle run instead of
/// many. [`FormManager::safe_updates`] in particular no longer re-solves
/// the oracle per candidate update.
///
/// On exploration-dispatched forms the manager additionally retains the
/// explored [`SessionGraph`] across edits (see the module docs), so a
/// post-edit sweep is a set of graph lookups rather than solves;
/// [`FormManager::recompute_stats`] reports the split.
#[derive(Debug, Clone)]
pub struct FormManager {
    form: GuardedForm,
    current: Instance,
    oracle: CompletabilityOptions,
    policy: UnknownPolicy,
    history: Vec<Update>,
    cache: Arc<VerdictCache>,
    /// The memoised rule signature shared by every vet of this session
    /// (the rules never change; only the initial instance does).
    rules_sig: RulesSignature,
    /// The form's fragment, memoised for published cache entries.
    fragment: Fragment,
    /// The oracle method Table 1 dispatch (or `force_method`) selects —
    /// fixed per session, decides session-graph eligibility.
    method: Method,
    /// Explorer threads granted to each oracle run (`None`: the explorer
    /// default). Layered hosts (e.g. `idar-server`, whose HTTP workers
    /// each drive a manager) pin this to their `split_threads` share so
    /// sessions never oversubscribe the host's budget.
    threads: Option<usize>,
    /// Memory budget: evict the retained graph (falling back to cold
    /// solves) once it holds more than this many states.
    max_retained_states: usize,
    /// Byte-denominated memory budget: evict once the graph's
    /// approximate resident bytes ([`SessionGraph::approx_bytes`])
    /// exceed this. `None`: states-only budget.
    max_retained_bytes: Option<usize>,
    session: RefCell<SessionState>,
    recompute: Cell<RecomputeStats>,
    evictions: Cell<EvictionStats>,
}

impl FormManager {
    /// Open a session on the form's initial instance, with a fresh
    /// verdict cache.
    pub fn new(form: GuardedForm, oracle: CompletabilityOptions, policy: UnknownPolicy) -> Self {
        let current = form.initial().clone();
        let rules_sig = rules_signature_of(&form);
        let fragment = classify(&form);
        let method = oracle.force_method.unwrap_or_else(|| select_method(&form));
        // Only exploration-shaped methods produce a state graph worth
        // retaining; saturation and the NP solver never build one.
        let eligible = matches!(method, Method::BoundedExploration | Method::Depth1Canonical);
        FormManager {
            form,
            current,
            oracle,
            policy,
            history: Vec::new(),
            cache: Arc::new(VerdictCache::new()),
            rules_sig,
            fragment,
            method,
            threads: None,
            max_retained_states: 1 << 20,
            max_retained_bytes: None,
            session: RefCell::new(if eligible {
                SessionState::Unbuilt
            } else {
                SessionState::Disabled
            }),
            recompute: Cell::new(RecomputeStats::default()),
            evictions: Cell::new(EvictionStats::default()),
        }
    }

    /// Share a verdict cache across managers (e.g. many sessions of the
    /// same deployed form behind one server).
    pub fn with_cache(mut self, cache: Arc<VerdictCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Pin the explorer-thread grant of every oracle run this session
    /// makes (thread counts are accounting, never verdict-affecting).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Cap the retained session graph at `max` states: a build or a
    /// query growth beyond it evicts the graph (retracting its published
    /// cache entries) and the session continues on cold solves.
    pub fn with_max_retained_states(mut self, max: usize) -> Self {
        self.max_retained_states = max;
        self
    }

    /// Cap the retained session graph at `max` approximate resident
    /// **bytes** ([`SessionGraph::approx_bytes`]) — the byte-denominated
    /// counterpart of [`FormManager::with_max_retained_states`]; both
    /// caps apply when both are set. Exceeding it evicts the graph
    /// (retracting its published cache entries) and the session
    /// continues on cold solves; [`FormManager::eviction_stats`] reports
    /// the bytes freed.
    pub fn with_max_retained_bytes(mut self, max: usize) -> Self {
        self.max_retained_bytes = Some(max);
        self
    }

    /// The manager's verdict cache.
    pub fn cache(&self) -> &Arc<VerdictCache> {
        &self.cache
    }

    /// Hit/miss counters of the manager's oracle cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cumulative oracle-call provenance counters of this session.
    pub fn recompute_stats(&self) -> RecomputeStats {
        self.recompute.get()
    }

    /// States currently retained by the session graph (`None` when no
    /// graph is active — ineligible method, not yet built, or evicted).
    pub fn retained_states(&self) -> Option<usize> {
        match &*self.session.borrow() {
            SessionState::Active(a) => Some(a.graph.retained_states()),
            _ => None,
        }
    }

    /// Approximate resident bytes of the retained session graph (`None`
    /// when no graph is active). What the byte budget and the server's
    /// `/metrics` retained-bytes gauge are denominated in.
    pub fn retained_bytes(&self) -> Option<usize> {
        match &mut *self.session.borrow_mut() {
            SessionState::Active(a) => Some(a.approx_bytes()),
            _ => None,
        }
    }

    /// Cumulative graph-eviction counters of this session.
    pub fn eviction_stats(&self) -> EvictionStats {
        self.evictions.get()
    }

    /// The form this session runs (rules and schema never change; only
    /// the live instance does).
    pub fn form(&self) -> &GuardedForm {
        &self.form
    }

    /// The live instance.
    pub fn current(&self) -> &Instance {
        &self.current
    }

    /// The accepted updates so far (a valid run).
    pub fn history(&self) -> &[Update] {
        &self.history
    }

    /// Is the form complete right now?
    pub fn is_complete(&self) -> bool {
        self.form.is_complete(&self.current)
    }

    /// Rewind the session to the form's initial instance, clearing the
    /// history. The retained graph (whose root *is* the initial
    /// instance), its published cache entries, and the recompute
    /// counters all survive, so a reset session answers its first sweep
    /// warm instead of re-interning the root and re-solving.
    pub fn reset(&mut self) {
        let from_graph = match &*self.session.borrow() {
            SessionState::Active(a) => Some(a.graph.store().get(a.graph.root()).clone()),
            _ => None,
        };
        self.current = from_graph.unwrap_or_else(|| self.form.initial().clone());
        self.history.clear();
    }

    /// Vet an update without applying it.
    pub fn vet(&self, update: &Update) -> Result<(), Rejection> {
        if !self.form.is_allowed(&self.current, update) {
            return Err(Rejection::NotAllowed);
        }
        let mut next = self.current.clone();
        self.form
            .apply_unchecked(&mut next, update)
            .expect("allowed update applies");
        match self.oracle_verdict(next) {
            Verdict::Holds => Ok(()),
            Verdict::Fails => Err(Rejection::WouldStrand),
            Verdict::Unknown => match self.policy {
                UnknownPolicy::Reject => Err(Rejection::Undecided),
                UnknownPolicy::Accept => Ok(()),
            },
        }
    }

    /// Vet and apply an update.
    pub fn submit(&mut self, update: Update) -> Result<(), Rejection> {
        self.vet(&update)?;
        self.form
            .apply_unchecked(&mut self.current, &update)
            .expect("vetted update applies");
        self.history.push(update);
        Ok(())
    }

    /// The updates the manager would currently accept.
    ///
    /// Each candidate is vetted through the cached oracle: candidates
    /// whose successor instances are isomorphic share one cache entry, so
    /// the oracle runs once per *distinct* successor class (and zero
    /// times on a repeat call) instead of once per candidate. With an
    /// active session graph the sweep doesn't solve at all — each
    /// distinct successor is a graph lookup or a bounded frontier
    /// extension.
    pub fn safe_updates(&self) -> Vec<Update> {
        self.form
            .allowed_updates(&self.current)
            .into_iter()
            .filter(|u| self.vet(u).is_ok())
            .collect()
    }

    /// The completability oracle behind `vet`/`safe_updates`: answer for
    /// the successor instance `next`, preferring the retained graph and
    /// falling back to the cold shared-cache pipeline.
    fn oracle_verdict(&self, next: Instance) -> Verdict {
        self.ensure_session();
        {
            let mut state = self.session.borrow_mut();
            if let SessionState::Active(active) = &mut *state {
                let answer = self.graph_answer(active, &next);
                // Query growth is monotone; enforce the memory budgets
                // (state- and byte-denominated) after every graph-path
                // answer.
                if self.over_budget(active) {
                    self.record_eviction(active.approx_bytes());
                    active.delta.retract_departed(&self.cache, |_| false);
                    *state = SessionState::Disabled;
                }
                if let Some(v) = answer {
                    return v;
                }
            }
        }
        self.bump(|r| r.cold_solves += 1);
        let sub = self.form.with_initial(next);
        // The memoised rule signature makes the per-candidate cache key a
        // hash of the successor instance alone.
        let key = VerdictCache::key_with(
            &self.rules_sig,
            &sub,
            AnalysisKind::Completability,
            &self.oracle,
        );
        let mut request = AnalysisRequest::completability(sub).with_budget(self.oracle.clone());
        if let Some(t) = self.threads {
            request = request.with_threads(t);
        }
        let report = analyze_keyed(&request, &self.cache, &key);
        // `screen` is `None` on cache hits, so this counts only calls
        // the screener itself answered (zero states expanded).
        if report.method == Method::StaticScreen && report.screen.is_some() {
            self.bump(|r| r.screen_decided += 1);
        }
        report.verdict
    }

    /// Build the session graph on the first oracle call of an eligible
    /// form: one sequential exploration under the oracle budget, logged
    /// for later resumes, annotated when it closed.
    fn ensure_session(&self) {
        let mut state = self.session.borrow_mut();
        if !matches!(*state, SessionState::Unbuilt) {
            return;
        }
        let mut graph = Explorer::new(&self.form, self.oracle.limits)
            .with_symmetry(self.oracle.symmetry)
            .build_session();
        let build_bytes = if self.max_retained_bytes.is_some() {
            graph.approx_bytes()
        } else {
            0
        };
        let build_over = graph.retained_states() > self.max_retained_states
            || self.max_retained_bytes.is_some_and(|b| build_bytes > b);
        *state = if build_over {
            self.record_eviction(if build_bytes == 0 {
                graph.approx_bytes()
            } else {
                build_bytes
            });
            SessionState::Disabled
        } else if graph.exact() {
            graph.annotate(&self.form);
            SessionState::Active(Box::new(ActiveSession::new(graph)))
        } else if self.method == Method::Depth1Canonical {
            // A truncated graph can only answer `Unknown` where the
            // canonical depth-1 system is exact: keep the cold oracle.
            SessionState::Disabled
        } else {
            SessionState::Active(Box::new(ActiveSession::new(graph)))
        };
    }

    /// Is the retained graph over either memory budget?
    fn over_budget(&self, active: &mut ActiveSession) -> bool {
        active.graph.retained_states() > self.max_retained_states
            || self
                .max_retained_bytes
                .is_some_and(|b| active.approx_bytes() > b)
    }

    fn record_eviction(&self, bytes_freed: usize) {
        let mut e = self.evictions.get();
        e.evictions += 1;
        e.evicted_bytes += bytes_freed as u64;
        self.evictions.set(e);
    }

    /// Answer `next` from the retained graph: an annotation lookup on
    /// exact graphs, a resumed BFS on truncated ones. `None` means the
    /// successor is not retained (or not annotated) — cold-solve it.
    fn graph_answer(&self, active: &mut ActiveSession, next: &Instance) -> Option<Verdict> {
        let id = active.graph.lookup(next)?;
        if active.graph.exact() {
            let verdict = active.graph.verdict_of(id)?;
            self.bump(|r| r.graph_hits += 1);
            self.publish(active, next, verdict, active.graph.build_stats());
            return Some(verdict);
        }
        if self.method != Method::BoundedExploration {
            return None;
        }
        let out = Explorer::new(&self.form, self.oracle.limits)
            .with_threads(1)
            .resume(&mut active.graph, id, |i| self.form.is_complete(i));
        let verdict = match (out.goal_run.is_some(), out.stats.closed) {
            (true, _) => Verdict::Holds,
            (false, true) => Verdict::Fails,
            (false, false) => Verdict::Unknown,
        };
        self.bump(|r| r.frontier_extends += 1);
        // Same cacheability rule as the cold pipeline: never publish an
        // `Unknown` that merely reflects a resource limit.
        if !(verdict == Verdict::Unknown && out.stats.limit_hit.is_some()) {
            self.publish(active, next, verdict, out.stats);
        }
        Some(verdict)
    }

    /// Publish a graph-derived verdict to the shared cache through the
    /// session delta (deduplicated per canonical successor state). The
    /// recorded method is the exploration the graph embodies; for exact
    /// graph hits the stats are the build's, not a per-query search.
    fn publish(
        &self,
        active: &mut ActiveSession,
        next: &Instance,
        verdict: Verdict,
        stats: SearchStats,
    ) {
        let sub = self.form.with_initial(next.clone());
        let key = VerdictCache::key_with(
            &self.rules_sig,
            &sub,
            AnalysisKind::Completability,
            &self.oracle,
        );
        active.delta.publish(
            &self.cache,
            key,
            CachedVerdict {
                verdict,
                method: Method::BoundedExploration,
                fragment: self.fragment,
                stats,
            },
        );
    }

    fn bump(&self, f: impl FnOnce(&mut RecomputeStats)) {
        let mut r = self.recompute.get();
        f(&mut r);
        self.recompute.set(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, InstNodeId, Right, Schema};
    use std::sync::Arc;

    /// The trap form: adding `t` makes completion (g) impossible.
    fn trap_form() -> GuardedForm {
        let schema = Arc::new(Schema::parse("g, t").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(
            Right::Add,
            schema.resolve("g").unwrap(),
            Formula::parse("!t & !g").unwrap(),
        );
        rules.set(
            Right::Add,
            schema.resolve("t").unwrap(),
            Formula::parse("!t").unwrap(),
        );
        let init = Instance::empty(schema.clone());
        GuardedForm::new(schema, rules, init, Formula::parse("g").unwrap())
    }

    #[test]
    fn manager_blocks_the_trap() {
        let form = trap_form();
        let t_edge = form.schema().resolve("t").unwrap();
        let g_edge = form.schema().resolve("g").unwrap();
        let mut mgr = FormManager::new(
            form,
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        );
        // `t` is allowed by the rules but stranding: rejected.
        let err = mgr
            .submit(Update::Add {
                parent: InstNodeId::ROOT,
                edge: t_edge,
            })
            .unwrap_err();
        assert_eq!(err, Rejection::WouldStrand);
        // `g` is fine.
        mgr.submit(Update::Add {
            parent: InstNodeId::ROOT,
            edge: g_edge,
        })
        .unwrap();
        assert!(mgr.is_complete());
        assert_eq!(mgr.history().len(), 1);
    }

    #[test]
    fn safe_updates_hit_the_verdict_cache() {
        // A form whose candidate updates produce isomorphic successors:
        // two interchangeable `p` siblings, each accepting a `b` child.
        let schema = Arc::new(Schema::parse("p(b)").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(
            Right::Add,
            schema.resolve("p").unwrap(),
            Formula::parse("true").unwrap(),
        );
        rules.set(
            Right::Add,
            schema.resolve("p/b").unwrap(),
            Formula::parse("true").unwrap(),
        );
        let init = Instance::parse(schema.clone(), "p, p").unwrap();
        let form = GuardedForm::new(schema, rules, init, Formula::parse("p[b]").unwrap());
        let oracle = CompletabilityOptions::with_limits(idar_solver::ExploreLimits {
            multiplicity_cap: Some(2),
            ..idar_solver::ExploreLimits::small()
        });
        let mgr = FormManager::new(form, oracle, UnknownPolicy::Reject);

        // 3 candidates: add p (root), add b under p₁, add b under p₂. The
        // two b-additions have isomorphic successors, so the cold sweep
        // runs the oracle twice and serves the third vet from the cache.
        let safe = mgr.safe_updates();
        assert_eq!(safe.len(), 3);
        let cold = mgr.cache_stats();
        assert_eq!(cold.misses, 2, "isomorphic successors solve once");
        assert_eq!(cold.hits, 1);

        // A repeat sweep is all hits: the cache-hit rate climbs to 2/3.
        let safe2 = mgr.safe_updates();
        assert_eq!(safe2, safe);
        let warm = mgr.cache_stats();
        assert_eq!(warm.misses, 2, "no new oracle runs");
        assert_eq!(warm.hits, 4);
        assert!(
            warm.hit_rate() > 0.6,
            "cache-hit rate {:.2} below the expected 2/3",
            warm.hit_rate()
        );
        // This positive-fragment form dispatches to saturation — no
        // state graph to retain, every call is a (cached) cold solve.
        assert_eq!(mgr.retained_states(), None);
        assert_eq!(
            mgr.recompute_stats().total(),
            mgr.recompute_stats().cold_solves
        );
    }

    #[test]
    fn safe_updates_exclude_stranding_ones() {
        let form = trap_form();
        let mgr = FormManager::new(
            form.clone(),
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        );
        let all = form.allowed_updates(form.initial());
        assert_eq!(all.len(), 2); // add g, add t
        let safe = mgr.safe_updates();
        assert_eq!(safe.len(), 1); // only add g
    }

    #[test]
    fn disallowed_updates_rejected_before_oracle() {
        let form = trap_form();
        let g_edge = form.schema().resolve("g").unwrap();
        let mut mgr = FormManager::new(
            form,
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        );
        mgr.submit(Update::Add {
            parent: InstNodeId::ROOT,
            edge: g_edge,
        })
        .unwrap();
        // Second g violates ¬g: structural rejection.
        let err = mgr
            .submit(Update::Add {
                parent: InstNodeId::ROOT,
                edge: g_edge,
            })
            .unwrap_err();
        assert_eq!(err, Rejection::NotAllowed);
    }

    /// The trap form's 4-state space closes, so after the first vet the
    /// session answers from graph annotations — zero further solves.
    #[test]
    fn trap_form_session_answers_from_the_graph() {
        let form = trap_form();
        let mgr = FormManager::new(
            form,
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        );
        let safe = mgr.safe_updates();
        assert_eq!(safe.len(), 1);
        let r = mgr.recompute_stats();
        assert_eq!(r.cold_solves, 0, "closed graph: no cold solves at all");
        assert_eq!(r.graph_hits, 2, "both candidates answered by lookup");
        assert_eq!(mgr.retained_states(), Some(4)); // {}, {g}, {t}, {g,t}
                                                    // Repeat sweeps stay on the graph.
        mgr.safe_updates();
        let r = mgr.recompute_stats();
        assert_eq!(r.graph_hits, 4);
        assert_eq!(r.cold_solves, 0);
        assert!(r.graph_hit_rate() > 0.99);
    }

    /// A session whose memory budget can't hold the graph evicts it —
    /// published entries are retracted from the shared cache and the
    /// verdicts stay identical on the cold path.
    #[test]
    fn eviction_falls_back_to_cold_with_identical_verdicts() {
        let form = trap_form();
        let roomy = FormManager::new(
            form.clone(),
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        );
        let tiny = FormManager::new(
            form,
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        )
        .with_max_retained_states(2);
        let a = roomy.safe_updates();
        let b = tiny.safe_updates();
        assert_eq!(a, b);
        assert_eq!(
            tiny.retained_states(),
            None,
            "4-state graph over the 2-state budget"
        );
        assert_eq!(tiny.recompute_stats().graph_hits, 0);
        assert!(tiny.recompute_stats().cold_solves > 0);
    }

    /// The byte-denominated budget behaves like the state budget: a
    /// graph over the byte cap is evicted (bytes freed are reported),
    /// verdicts stay identical on the cold path, and a roomy byte cap
    /// retains the graph and reports its resident bytes.
    #[test]
    fn byte_budget_evicts_and_reports_bytes_freed() {
        let form = trap_form();
        let roomy = FormManager::new(
            form.clone(),
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        )
        .with_max_retained_bytes(64 * 1024 * 1024);
        let tiny = FormManager::new(
            form,
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        )
        .with_max_retained_bytes(16);
        let a = roomy.safe_updates();
        let b = tiny.safe_updates();
        assert_eq!(a, b, "byte budget never affects verdicts");
        let retained = roomy.retained_bytes().expect("graph under the byte cap");
        assert!(retained > 16, "a 4-state graph holds real bytes");
        assert_eq!(roomy.eviction_stats(), EvictionStats::default());
        assert_eq!(tiny.retained_bytes(), None, "graph over 16 B evicted");
        let ev = tiny.eviction_stats();
        assert_eq!(ev.evictions, 1);
        assert!(ev.evicted_bytes > 16);
        assert!(tiny.recompute_stats().cold_solves > 0);
    }

    /// `reset` rewinds to the initial instance while keeping the
    /// retained graph, so the post-reset sweep is warm.
    #[test]
    fn reset_reuses_the_retained_graph() {
        let form = trap_form();
        let g_edge = form.schema().resolve("g").unwrap();
        let mut mgr = FormManager::new(
            form,
            CompletabilityOptions::default(),
            UnknownPolicy::Reject,
        );
        mgr.submit(Update::Add {
            parent: InstNodeId::ROOT,
            edge: g_edge,
        })
        .unwrap();
        assert!(mgr.is_complete());
        mgr.reset();
        assert!(!mgr.is_complete());
        assert!(mgr.history().is_empty());
        let before = mgr.recompute_stats();
        assert_eq!(mgr.safe_updates().len(), 1);
        let delta = mgr.recompute_stats().minus(&before);
        assert_eq!(delta.cold_solves, 0, "post-reset sweep stays on the graph");
        assert_eq!(delta.graph_hits, 2);
    }

    #[test]
    fn manager_completes_the_leave_application() {
        // Drive the paper's own example through the manager: every step of
        // the known-good completing run must be accepted.
        let form = idar_core::leave::example_3_12();
        let run = idar_core::leave::complete_run(&form);
        let oracle = CompletabilityOptions::with_limits(idar_solver::ExploreLimits {
            multiplicity_cap: Some(1),
            max_states: 20_000,
            ..idar_solver::ExploreLimits::small()
        });
        let mut mgr = FormManager::new(form, oracle, UnknownPolicy::Accept);
        for u in run {
            mgr.submit(u).unwrap();
        }
        assert!(mgr.is_complete());
        // The leave form explores under a multiplicity cap (truncated
        // graph): the session must have served frontier extensions.
        assert!(mgr.recompute_stats().frontier_extends > 0);
    }

    #[test]
    fn manager_protects_the_broken_leave_variant() {
        // Sec. 3.5 variant: the manager must refuse the early `f` that
        // strands the form.
        let form = idar_core::leave::section_3_5_variant();
        let sch = form.schema().clone();
        let oracle = CompletabilityOptions::with_limits(idar_solver::ExploreLimits {
            multiplicity_cap: Some(1),
            max_states: 20_000,
            ..idar_solver::ExploreLimits::small()
        });
        let mut mgr = FormManager::new(form, oracle, UnknownPolicy::Accept);
        let steps = [
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: sch.resolve("a").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(1),
                edge: sch.resolve("a/n").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(1),
                edge: sch.resolve("a/d").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(1),
                edge: sch.resolve("a/p").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(4),
                edge: sch.resolve("a/p/b").unwrap(),
            },
            Update::Add {
                parent: InstNodeId(4),
                edge: sch.resolve("a/p/e").unwrap(),
            },
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: sch.resolve("s").unwrap(),
            },
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: sch.resolve("d").unwrap(),
            },
        ];
        for u in steps {
            mgr.submit(u).unwrap();
        }
        // The stranding early-final:
        let f_edge = sch.resolve("f").unwrap();
        let err = mgr
            .submit(Update::Add {
                parent: InstNodeId::ROOT,
                edge: f_edge,
            })
            .unwrap_err();
        assert_eq!(err, Rejection::WouldStrand);
        // Approving first keeps the workflow alive…
        mgr.submit(Update::Add {
            parent: InstNodeId(8),
            edge: sch.resolve("d/a").unwrap(),
        })
        .unwrap();
        // …and now final is safe.
        mgr.submit(Update::Add {
            parent: InstNodeId::ROOT,
            edge: f_edge,
        })
        .unwrap();
        assert!(mgr.is_complete());
    }
}
